//! Trace-derived metrics: everything here is computed purely from a
//! drained event list, so the same numbers can be recovered from an
//! exported file (JSON or binary) as from a live run.

use crate::{Event, EventKind};
use std::collections::HashMap;

/// A reconstructed `B`/`E` span.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Simulated rank.
    pub rank: u32,
    /// Lane within the rank.
    pub tid: u32,
    /// Name from the opening event.
    pub name: String,
    /// Category from the opening event.
    pub cat: String,
    /// Open timestamp (µs since epoch).
    pub t0_us: f64,
    /// Close timestamp (µs since epoch).
    pub t1_us: f64,
    /// Args from the opening event.
    pub args: Vec<(String, u64)>,
}

impl Span {
    /// Span length in seconds.
    pub fn secs(&self) -> f64 {
        (self.t1_us - self.t0_us) / 1e6
    }

    /// Value of an integer arg, if present.
    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Pair `Begin`/`End` events into spans (LIFO per `(rank, tid)` lane).
/// Unclosed spans are dropped.
pub fn spans(events: &[Event]) -> Vec<Span> {
    let mut stacks: HashMap<(u32, u32), Vec<Span>> = HashMap::new();
    let mut out = Vec::new();
    for e in events {
        match e.kind {
            EventKind::Begin => stacks.entry((e.rank, e.tid)).or_default().push(Span {
                rank: e.rank,
                tid: e.tid,
                name: e.name.to_string(),
                cat: e.cat.to_string(),
                t0_us: e.ts_us,
                t1_us: e.ts_us,
                args: e.args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            }),
            EventKind::End => {
                if let Some(mut s) = stacks.entry((e.rank, e.tid)).or_default().pop() {
                    s.t1_us = e.ts_us;
                    out.push(s);
                }
            }
            _ => {}
        }
    }
    out
}

/// Max/avg seconds over ranks for one span name.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseStat {
    /// Span name (phase or task label).
    pub name: String,
    /// Max over ranks of that rank's summed seconds.
    pub max_secs: f64,
    /// Average over the ranks present in the trace.
    pub avg_secs: f64,
}

/// Load imbalance per span name in `cat`: per rank, sum the seconds of
/// all spans with that name; report (max, avg) over ranks — the two
/// columns of the paper's Table II, recovered from the trace. The
/// average divides by the number of distinct ranks in the trace (ranks
/// without the phase count as zero).
pub fn load_imbalance(events: &[Event], cat: &str) -> Vec<PhaseStat> {
    let mut ranks: Vec<u32> = events.iter().map(|e| e.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();
    let nr = ranks.len().max(1) as f64;
    let mut per: HashMap<String, HashMap<u32, f64>> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for s in spans(events) {
        if s.cat != cat {
            continue;
        }
        if !per.contains_key(&s.name) {
            order.push(s.name.clone());
        }
        *per.entry(s.name.clone())
            .or_default()
            .entry(s.rank)
            .or_default() += s.secs();
    }
    order
        .into_iter()
        .map(|name| {
            let by_rank = &per[&name];
            let max_secs = by_rank.values().fold(0.0, |a: f64, &b| a.max(b));
            let avg_secs = by_rank.values().sum::<f64>() / nr;
            PhaseStat {
                name,
                max_secs,
                avg_secs,
            }
        })
        .collect()
}

/// Busy fraction of one `(rank, tid)` Gantt lane.
#[derive(Clone, Debug, PartialEq)]
pub struct LaneUtil {
    /// Simulated rank.
    pub rank: u32,
    /// Lane within the rank.
    pub tid: u32,
    /// Seconds covered by at least one span on the lane.
    pub busy_secs: f64,
    /// Busy seconds over the trace's global time window.
    pub utilization: f64,
}

/// Per-lane Gantt utilization: union length of each lane's spans over
/// the global `[min ts, max ts]` window of the trace.
pub fn utilization(events: &[Event]) -> Vec<LaneUtil> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for e in events {
        lo = lo.min(e.ts_us);
        hi = hi.max(e.ts_us);
    }
    let window = (hi - lo).max(0.0);
    let mut by_lane: HashMap<(u32, u32), Vec<(f64, f64)>> = HashMap::new();
    for s in spans(events) {
        by_lane
            .entry((s.rank, s.tid))
            .or_default()
            .push((s.t0_us, s.t1_us));
    }
    let mut lanes: Vec<_> = by_lane.into_iter().collect();
    lanes.sort_by_key(|((r, t), _)| (*r, *t));
    lanes
        .into_iter()
        .map(|((rank, tid), ivs)| {
            let busy_us = merged_len(ivs);
            LaneUtil {
                rank,
                tid,
                busy_secs: busy_us / 1e6,
                utilization: if window > 0.0 { busy_us / window } else { 0.0 },
            }
        })
        .collect()
}

/// Sort, merge, and total a set of intervals.
fn merged_len(mut ivs: Vec<(f64, f64)>) -> f64 {
    ivs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for (a, b) in ivs {
        match &mut cur {
            Some(c) if c.1 >= a => c.1 = c.1.max(b),
            _ => {
                if let Some((x, y)) = cur {
                    total += y - x;
                }
                cur = Some((a, b));
            }
        }
    }
    if let Some((x, y)) = cur {
        total += y - x;
    }
    total
}

/// Compute∩comm overlap for one rank, in seconds: the union of the
/// rank's `cat=="comm"` spans intersected with each of its `cat=="task"`
/// spans. This is the same merge-then-intersect the graph executor uses
/// for `RunReport::overlap_secs`, so on a traced graph run the two agree
/// to rounding (the consistency test asserts 1e-9).
pub fn overlap_secs(events: &[Event], rank: u32) -> f64 {
    let spans = spans(events);
    let mut comm: Vec<(f64, f64)> = spans
        .iter()
        .filter(|s| s.rank == rank && s.cat == "comm")
        .map(|s| (s.t0_us, s.t1_us))
        .collect();
    comm.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut merged: Vec<(f64, f64)> = Vec::new();
    for (a, b) in comm {
        match merged.last_mut() {
            Some(last) if last.1 >= a => last.1 = last.1.max(b),
            _ => merged.push((a, b)),
        }
    }
    let mut overlap_us = 0.0;
    for s in spans.iter().filter(|s| s.rank == rank && s.cat == "task") {
        for &(a, b) in &merged {
            if a > s.t1_us {
                break;
            }
            let lo = a.max(s.t0_us);
            let hi = b.min(s.t1_us);
            if hi > lo {
                overlap_us += hi - lo;
            }
        }
    }
    overlap_us / 1e6
}

/// Critical-path estimate for one rank's task graph, in seconds: the
/// longest dependency chain through the rank's task/comm spans (spans
/// carrying a `task` arg), with edges taken from the scheduler's
/// dependency flow events (`cat=="sched"`, args `src`/`dst`). This is a
/// lower bound on the rank's achievable wall-clock at infinite
/// parallelism.
pub fn critical_path_secs(events: &[Event], rank: u32) -> f64 {
    let mut dur: HashMap<u64, f64> = HashMap::new();
    for s in spans(events) {
        if s.rank != rank {
            continue;
        }
        if let Some(id) = s.arg("task") {
            *dur.entry(id).or_default() += s.secs();
        }
    }
    let mut edges: Vec<(u64, u64)> = Vec::new();
    for e in events {
        if e.kind == EventKind::FlowStart && e.cat == "sched" && e.rank == rank {
            let src = e.args.iter().find(|(k, _)| k == "src").map(|(_, v)| *v);
            let dst = e.args.iter().find(|(k, _)| k == "dst").map(|(_, v)| *v);
            if let (Some(s), Some(d)) = (src, dst) {
                edges.push((s, d));
            }
        }
    }
    // Longest path over the DAG via Kahn ordering.
    let mut indeg: HashMap<u64, usize> = dur.keys().map(|&k| (k, 0)).collect();
    let mut children: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(s, d) in &edges {
        if dur.contains_key(&s) && dur.contains_key(&d) {
            *indeg.entry(d).or_default() += 1;
            children.entry(s).or_default().push(d);
        }
    }
    let mut finish: HashMap<u64, f64> = HashMap::new();
    let mut queue: Vec<u64> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&k, _)| k)
        .collect();
    queue.sort_unstable();
    let mut head = 0;
    let mut best = 0.0f64;
    while head < queue.len() {
        let t = queue[head];
        head += 1;
        let f = finish.get(&t).copied().unwrap_or(0.0) + dur[&t];
        best = best.max(f);
        if let Some(cs) = children.get(&t) {
            for &c in cs {
                let e = finish.entry(c).or_default();
                *e = e.max(f);
                let d = indeg.get_mut(&c).expect("child seen in indeg");
                *d -= 1;
                if *d == 0 {
                    queue.push(c);
                }
            }
        }
    }
    best
}

/// Sub-buckets per power of two in a [`Histogram`] (the HDR-style
/// mantissa subdivision). Relative bucket width is `1/SUB_BUCKETS` ≈ 3%.
const SUB_BUCKETS: usize = 32;
/// Smallest binary exponent a [`Histogram`] distinguishes; values below
/// `2^MIN_EXP` land in the first bucket. With microsecond latencies this
/// is ~1e-9 µs — far below anything a service records.
const MIN_EXP: i32 = -30;
/// Largest binary exponent; values at or above `2^(MAX_EXP+1)` clamp to
/// the last bucket (~2e12 µs ≈ 25 days).
const MAX_EXP: i32 = 41;

/// A log-bucketed histogram for latency-like nonnegative samples.
///
/// Buckets subdivide each power of two into [`SUB_BUCKETS`] linear
/// sub-buckets (the HDR-histogram layout), so bucketing is exact integer
/// arithmetic on the float's bits — no `log2` rounding, identical on
/// every platform. Quantile estimates are therefore within one bucket
/// width (≈3% relative) of the exact order statistic, which the property
/// test in `tests/histogram.rs` checks against a sorted oracle.
///
/// Histograms from different workers [`Histogram::merge`] losslessly:
/// the layout is fixed, so merging is element-wise count addition.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; Histogram::num_buckets()],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Total buckets in the fixed layout (shared with any other
    /// histogram implementation that wants to interoperate, e.g. the
    /// atomic variant in `pfmm-metrics`).
    pub fn num_buckets() -> usize {
        (MAX_EXP - MIN_EXP + 1) as usize * SUB_BUCKETS
    }

    /// Public bucket index of a value — the same clamped bit-exact
    /// mapping [`Histogram::record`] uses. External atomic collectors
    /// bucket with this and later rehydrate via
    /// [`Histogram::from_parts`], so quantile arithmetic lives in
    /// exactly one place and the two representations cannot drift.
    pub fn bucket_index(v: f64) -> usize {
        Histogram::bucket_of(v)
    }

    /// Rebuild a histogram from externally collected parts. `counts`
    /// must use the layout of [`Histogram::bucket_index`] (length
    /// [`Histogram::num_buckets`]); `count` is derived from the bucket
    /// totals. `min`/`max` of an empty histogram are `(∞, −∞)`.
    ///
    /// # Panics
    /// Panics when `counts` has the wrong length.
    pub fn from_parts(counts: Vec<u64>, sum: f64, min: f64, max: f64) -> Histogram {
        assert_eq!(counts.len(), Histogram::num_buckets(), "bucket layout");
        let count = counts.iter().sum();
        Histogram {
            counts,
            count,
            sum,
            min,
            max,
        }
    }

    /// Bucket index of a value (clamped to the representable range).
    fn bucket_of(v: f64) -> usize {
        if v <= 0.0 || !v.is_finite() {
            return 0;
        }
        // Normalized doubles are m·2^e with m ∈ [1, 2); recover e and the
        // top mantissa bits directly so bucketing is bit-exact.
        let bits = v.to_bits();
        let e = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if e < MIN_EXP {
            return 0;
        }
        let last = (MAX_EXP - MIN_EXP + 1) as usize * SUB_BUCKETS - 1;
        if e > MAX_EXP {
            return last;
        }
        let mantissa = bits & ((1u64 << 52) - 1);
        let sub = (mantissa >> (52 - SUB_BUCKETS.trailing_zeros())) as usize;
        ((e - MIN_EXP) as usize * SUB_BUCKETS + sub).min(last)
    }

    /// Lower edge of bucket `k`.
    fn bucket_lo(k: usize) -> f64 {
        let e = MIN_EXP + (k / SUB_BUCKETS) as i32;
        let sub = (k % SUB_BUCKETS) as f64;
        (2.0f64).powi(e) * (1.0 + sub / SUB_BUCKETS as f64)
    }

    /// Upper edge of bucket `k` (the lower edge of `k + 1`).
    fn bucket_hi(k: usize) -> f64 {
        Histogram::bucket_lo(k + 1)
    }

    /// Record one sample (negative/NaN samples count into the first
    /// bucket rather than being dropped, so totals always balance).
    pub fn record(&mut self, v: f64) {
        self.counts[Histogram::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of the recorded samples (0 when empty) — with
    /// [`Histogram::count`] this is the pair Prometheus summaries
    /// export as `_sum`/`_count`.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum sample (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact maximum sample (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Fold another histogram into this one (element-wise; both use the
    /// same fixed layout).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), estimated as the upper edge of
    /// the bucket holding the order statistic — within one bucket width
    /// of the exact value, and clamped to the exact observed `[min, max]`
    /// so `quantile(0)`/`quantile(1)` are exact. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // The k-th order statistic (1-based), matching the oracle
        // `sorted[ceil(q·n) - 1]`.
        let want = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= want {
                return Histogram::bucket_hi(k).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (the tail SLO quantile).
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Worst-case relative half-width of the bucket containing `v` —
    /// the tolerance the quantile estimate is good to.
    pub fn relative_error_at(v: f64) -> f64 {
        let k = Histogram::bucket_of(v);
        let (lo, hi) = (Histogram::bucket_lo(k), Histogram::bucket_hi(k));
        (hi - lo) / lo
    }
}

/// Msgs/bytes matrices recovered from per-message `send` instants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommMatrixCounts {
    /// Number of ranks (matrix side).
    pub p: usize,
    /// `msgs[src * p + dst]`.
    pub msgs: Vec<u64>,
    /// `bytes[src * p + dst]`.
    pub bytes: Vec<u64>,
}

/// Build the p×p comm matrix from `cat=="comm"` `send` instants (args
/// `peer` and `bytes`); `p` is inferred from the largest rank/peer seen.
pub fn comm_matrix(events: &[Event]) -> CommMatrixCounts {
    let mut p = 0usize;
    let mut sends: Vec<(usize, usize, u64)> = Vec::new();
    for e in events {
        if e.kind == EventKind::Instant && e.cat == "comm" && e.name == "send" {
            let peer = e
                .args
                .iter()
                .find(|(k, _)| k == "peer")
                .map(|(_, v)| *v as usize);
            let bytes = e
                .args
                .iter()
                .find(|(k, _)| k == "bytes")
                .map(|(_, v)| *v)
                .unwrap_or(0);
            if let Some(peer) = peer {
                p = p.max(e.rank as usize + 1).max(peer + 1);
                sends.push((e.rank as usize, peer, bytes));
            }
        }
    }
    let mut msgs = vec![0u64; p * p];
    let mut bytes = vec![0u64; p * p];
    for (src, dst, b) in sends {
        msgs[src * p + dst] += 1;
        bytes[src * p + dst] += b;
    }
    CommMatrixCounts { p, msgs, bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Str, TraceLevel, Tracer};
    use std::borrow::Cow;
    use std::sync::Arc;

    fn span_ev(
        kind: EventKind,
        name: &'static str,
        cat: &'static str,
        rank: u32,
        tid: u32,
        ts: f64,
    ) -> Event {
        Event {
            kind,
            name: Cow::Borrowed(name),
            cat: Cow::Borrowed(cat),
            rank,
            tid,
            ts_us: ts,
            flow: 0,
            args: Vec::new(),
        }
    }

    fn with_arg(mut e: Event, k: &'static str, v: u64) -> Event {
        e.args.push((Cow::Borrowed(k) as Str, v));
        e
    }

    #[test]
    fn spans_pair_lifo_per_lane() {
        let evs = vec![
            span_ev(EventKind::Begin, "outer", "phase", 0, 0, 0.0),
            span_ev(EventKind::Begin, "inner", "task", 0, 0, 1.0),
            span_ev(EventKind::Begin, "other", "task", 1, 0, 2.0),
            span_ev(EventKind::End, "", "", 0, 0, 3.0),
            span_ev(EventKind::End, "", "", 1, 0, 4.0),
            span_ev(EventKind::End, "", "", 0, 0, 5.0),
        ];
        let sp = spans(&evs);
        assert_eq!(sp.len(), 3);
        let inner = sp.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!((inner.t0_us, inner.t1_us), (1.0, 3.0));
        let outer = sp.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!((outer.t0_us, outer.t1_us), (0.0, 5.0));
    }

    #[test]
    fn imbalance_max_avg() {
        // rank 0: 3s of U-list; rank 1: 1s.
        let evs = vec![
            span_ev(EventKind::Begin, "U-list", "phase", 0, 0, 0.0),
            span_ev(EventKind::End, "", "", 0, 0, 3e6),
            span_ev(EventKind::Begin, "U-list", "phase", 1, 0, 0.0),
            span_ev(EventKind::End, "", "", 1, 0, 1e6),
        ];
        let st = load_imbalance(&evs, "phase");
        assert_eq!(st.len(), 1);
        assert!((st[0].max_secs - 3.0).abs() < 1e-12);
        assert!((st[0].avg_secs - 2.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_unions_overlaps() {
        // One lane busy [0,2]∪[1,3] = 3 of a 4-unit window.
        let evs = vec![
            span_ev(EventKind::Begin, "a", "task", 0, 1, 0.0),
            span_ev(EventKind::End, "", "", 0, 1, 2e6),
            span_ev(EventKind::Begin, "b", "task", 0, 1, 1e6),
            span_ev(EventKind::End, "", "", 0, 1, 3e6),
            span_ev(EventKind::Instant, "end", "comm", 0, 0, 4e6),
        ];
        let u = utilization(&evs);
        let lane = u.iter().find(|l| l.tid == 1).unwrap();
        assert!((lane.busy_secs - 3.0).abs() < 1e-12);
        assert!((lane.utilization - 0.75).abs() < 1e-12);
    }

    #[test]
    fn overlap_merges_comm_windows() {
        // comm windows [0,4]∪[3,6] merge to [0,6]; task [2,8] overlaps 4.
        let evs = vec![
            span_ev(EventKind::Begin, "Comm.", "comm", 0, 900, 0.0),
            span_ev(EventKind::End, "", "", 0, 900, 4e6),
            span_ev(EventKind::Begin, "Comm.", "comm", 0, 901, 3e6),
            span_ev(EventKind::End, "", "", 0, 901, 6e6),
            span_ev(EventKind::Begin, "V-list", "task", 0, 1, 2e6),
            span_ev(EventKind::End, "", "", 0, 1, 8e6),
            // Other rank's comm must not count.
            span_ev(EventKind::Begin, "Comm.", "comm", 1, 900, 0.0),
            span_ev(EventKind::End, "", "", 1, 900, 9e6),
        ];
        assert!((overlap_secs(&evs, 0) - 4.0).abs() < 1e-12);
        assert_eq!(overlap_secs(&evs, 1), 0.0);
    }

    #[test]
    fn critical_path_follows_edges() {
        // 0 (2s) -> 1 (1s); 2 (2.5s) independent => cp = 3s.
        let mut evs = vec![
            with_arg(span_ev(EventKind::Begin, "a", "task", 0, 1, 0.0), "task", 0),
            span_ev(EventKind::End, "", "", 0, 1, 2e6),
            with_arg(span_ev(EventKind::Begin, "b", "task", 0, 2, 2e6), "task", 1),
            span_ev(EventKind::End, "", "", 0, 2, 3e6),
            with_arg(span_ev(EventKind::Begin, "c", "task", 0, 1, 2e6), "task", 2),
            span_ev(EventKind::End, "", "", 0, 1, 4.5e6),
        ];
        let mut flow = span_ev(EventKind::FlowStart, "dep", "sched", 0, 1, 2e6);
        flow.flow = 1;
        let flow = with_arg(with_arg(flow, "src", 0), "dst", 1);
        evs.push(flow);
        assert!((critical_path_secs(&evs, 0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn comm_matrix_from_sends() {
        let t = Arc::new(Tracer::new(TraceLevel::Comm));
        let mut l0 = t.local(0, 0);
        l0.instant("send", "comm", &[("peer", 1), ("bytes", 100), ("tag", 5)]);
        l0.instant("send", "comm", &[("peer", 1), ("bytes", 50), ("tag", 5)]);
        l0.instant("recv", "comm", &[("peer", 1), ("bytes", 7)]);
        l0.submit();
        let mut l1 = t.local(1, 0);
        l1.instant("send", "comm", &[("peer", 0), ("bytes", 7), ("tag", 5)]);
        l1.submit();
        let m = comm_matrix(&t.drain());
        assert_eq!(m.p, 2);
        assert_eq!(m.msgs, vec![0, 2, 1, 0]);
        assert_eq!(m.bytes, vec![0, 150, 7, 0]);
    }
}
