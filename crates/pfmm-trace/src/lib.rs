//! Structured span tracing for the pfmm pipeline.
//!
//! The model is deliberately small: a run owns one [`Tracer`] shared by
//! every simulated rank (so all timestamps share one epoch and cross-rank
//! flow arrows line up), threads record [`Event`]s through per-thread
//! [`Local`] buffers (lock-free pushes; one mutex acquisition when a
//! buffer is submitted), and exporters/consumers operate on the drained
//! event list:
//!
//! - [`chrome`] — Chrome trace-event JSON (`chrome://tracing` /
//!   [Perfetto](https://ui.perfetto.dev) compatible): one pid per
//!   simulated rank, one tid per worker lane, flow events rendering
//!   message sends and task dependencies as arrows.
//! - [`binfmt`] — a compact self-describing binary encoding for tests.
//! - [`metrics`] — load imbalance, per-lane Gantt utilization,
//!   comm∩compute overlap, critical path, and the comm matrix, all
//!   derived purely from events.
//!
//! Recording is zero-cost when off: every hook is gated on
//! [`Tracer::enabled`] (an inline level compare), and the `noop` cargo
//! feature compiles even that to a constant `false`.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod binfmt;
pub mod chrome;
pub mod json;
pub mod metrics;

/// Interned-or-owned event string. `'static` borrows are free to record;
/// owned strings appear only when parsing traces back in.
pub type Str = Cow<'static, str>;

/// How much a run records. Levels are cumulative: `Comm` implies `Task`
/// implies `Phase`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing (the default; all hooks early-return).
    Off,
    /// One span per FMM phase per rank, plus GPU pipeline stages.
    Phase,
    /// Plus one span per scheduled task / executor chunk, with
    /// dependency-edge flow events and counter payloads.
    Task,
    /// Plus per-message send/recv instants with flow arrows linking a
    /// send to its matching recv.
    Comm,
}

impl TraceLevel {
    /// Parse a CLI-style level name.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "phase" => Some(TraceLevel::Phase),
            "task" => Some(TraceLevel::Task),
            "comm" => Some(TraceLevel::Comm),
            _ => None,
        }
    }

    /// The CLI-style name.
    pub fn label(&self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Phase => "phase",
            TraceLevel::Task => "task",
            TraceLevel::Comm => "comm",
        }
    }
}

/// The kind of a recorded event, mirroring the Chrome trace-event phases
/// we emit (`B`/`E`/`i`/`s`/`f`/`C`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span open (`ph:"B"`).
    Begin,
    /// Span close (`ph:"E"`). Name may be empty; spans close LIFO per tid.
    End,
    /// Zero-duration marker (`ph:"i"`, thread scope).
    Instant,
    /// Flow-arrow tail (`ph:"s"`); `flow` pairs it with a [`Self::FlowEnd`].
    FlowStart,
    /// Flow-arrow head (`ph:"f"`, binding point `"e"`).
    FlowEnd,
    /// Counter sample (`ph:"C"`); args are the counter series.
    Counter,
}

/// One recorded trace event.
///
/// `rank` maps to the Chrome pid, `tid` to the thread lane within the
/// rank (0 is the rank's driver/main thread, `1..` are workers — see
/// [`tid_worker`] — and [`TID_GPU`] is the modeled GPU stream).
/// Timestamps are microseconds since the owning tracer's epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// What the record is (span edge, instant, flow edge, counter).
    pub kind: EventKind,
    /// Display name (phase label, task label, "send", ...).
    pub name: Str,
    /// Category: "phase", "task", "comm", "sched", "gpu", "setup".
    pub cat: Str,
    /// Simulated rank (Chrome pid).
    pub rank: u32,
    /// Lane within the rank (Chrome tid).
    pub tid: u32,
    /// Microseconds since the tracer epoch.
    pub ts_us: f64,
    /// Flow id pairing a `FlowStart` with its `FlowEnd`; 0 = none.
    pub flow: u64,
    /// Integer payloads (peer, bytes, task id, level, ...).
    pub args: Vec<(Str, u64)>,
}

impl Event {
    /// Convenience constructor with no flow id and no args.
    pub fn new(kind: EventKind, name: &'static str, cat: &'static str) -> Event {
        Event {
            kind,
            name: Cow::Borrowed(name),
            cat: Cow::Borrowed(cat),
            rank: 0,
            tid: 0,
            ts_us: 0.0,
            flow: 0,
            args: Vec::new(),
        }
    }
}

/// Driver/main lane of a rank.
pub const TID_MAIN: u32 = 0;
/// The modeled GPU stream lane.
pub const TID_GPU: u32 = 1000;

/// Lane of worker thread `w` (0-based).
#[inline]
pub fn tid_worker(w: usize) -> u32 {
    1 + w as u32
}

/// Human name of a lane, used for Chrome thread-name metadata.
pub fn tid_label(tid: u32) -> String {
    match tid {
        TID_MAIN => "driver".to_string(),
        TID_GPU => "gpu".to_string(),
        w => format!("worker {}", w - 1),
    }
}

/// The per-run event sink. One instance is shared (via `Arc` or borrow)
/// across every rank of a simulated run so all events share one clock.
pub struct Tracer {
    level: TraceLevel,
    epoch: Instant,
    events: Mutex<Vec<Event>>,
    next_flow: AtomicU64,
}

impl Tracer {
    /// A tracer recording at `level`.
    pub fn new(level: TraceLevel) -> Tracer {
        Tracer {
            level,
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            next_flow: AtomicU64::new(1),
        }
    }

    /// A disabled tracer (every hook is a no-op).
    pub fn off() -> Tracer {
        Tracer::new(TraceLevel::Off)
    }

    /// The configured level.
    #[inline]
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Whether events at `at` should be recorded. This is the fast path
    /// every hook checks first; with the `noop` feature it is constant
    /// `false` and the recording code compiles away.
    #[inline]
    pub fn enabled(&self, at: TraceLevel) -> bool {
        #[cfg(feature = "noop")]
        {
            let _ = at;
            false
        }
        #[cfg(not(feature = "noop"))]
        {
            at != TraceLevel::Off && self.level >= at
        }
    }

    /// Microseconds since this tracer's epoch.
    #[inline]
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Allocate one globally unique (per tracer) flow id.
    #[inline]
    pub fn alloc_flow(&self) -> u64 {
        self.next_flow.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate a contiguous block of `n` flow ids; returns the first.
    pub fn alloc_flows(&self, n: u64) -> u64 {
        self.next_flow.fetch_add(n, Ordering::Relaxed)
    }

    /// Record a single event (one mutex acquisition; prefer [`Local`]
    /// buffers on hot paths).
    pub fn record(&self, e: Event) {
        if self.enabled(TraceLevel::Phase) {
            self.events.lock().unwrap().push(e);
        }
    }

    /// Record a batch of events in one mutex acquisition.
    pub fn record_many(&self, evs: Vec<Event>) {
        if self.enabled(TraceLevel::Phase) && !evs.is_empty() {
            self.events.lock().unwrap().extend(evs);
        }
    }

    /// Record a complete span `[t0_us, t1_us]` on `(rank, tid)` in one
    /// mutex acquisition. Used for coarse spans measured externally.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        rank: u32,
        tid: u32,
        name: &'static str,
        cat: &'static str,
        t0_us: f64,
        t1_us: f64,
        args: &[(&'static str, u64)],
    ) {
        if !self.enabled(TraceLevel::Phase) {
            return;
        }
        let mk = |kind, ts_us: f64, args: Vec<(Str, u64)>| Event {
            kind,
            name: Cow::Borrowed(name),
            cat: Cow::Borrowed(cat),
            rank,
            tid,
            ts_us,
            flow: 0,
            args,
        };
        let open_args = args
            .iter()
            .map(|&(k, v)| (Cow::Borrowed(k), v))
            .collect::<Vec<_>>();
        let mut g = self.events.lock().unwrap();
        g.push(mk(EventKind::Begin, t0_us, open_args));
        g.push(mk(EventKind::End, t1_us, Vec::new()));
    }

    /// A per-thread recording buffer bound to `(rank, tid)`.
    pub fn local(self: &Arc<Self>, rank: u32, tid: u32) -> Local {
        Local {
            tracer: Arc::clone(self),
            rank,
            tid,
            buf: Vec::new(),
        }
    }

    /// Take all recorded events, sorted by timestamp (stable, so
    /// same-timestamp Begin/End pairs keep their recording order).
    pub fn drain(&self) -> Vec<Event> {
        let mut evs = std::mem::take(&mut *self.events.lock().unwrap());
        evs.sort_by(|a, b| a.ts_us.partial_cmp(&b.ts_us).unwrap());
        evs
    }
}

/// A per-thread event buffer: pushes are plain `Vec` appends (no lock,
/// no atomics); the buffer drains into its [`Tracer`] on [`Local::submit`]
/// or drop.
pub struct Local {
    tracer: Arc<Tracer>,
    rank: u32,
    tid: u32,
    buf: Vec<Event>,
}

impl Local {
    /// Fast level check (see [`Tracer::enabled`]).
    #[inline]
    pub fn enabled(&self, at: TraceLevel) -> bool {
        self.tracer.enabled(at)
    }

    /// The owning tracer.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The rank this buffer records for.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    #[inline]
    fn push(
        &mut self,
        kind: EventKind,
        name: &'static str,
        cat: &'static str,
        flow: u64,
        args: &[(&'static str, u64)],
    ) {
        let ts_us = self.tracer.now_us();
        self.buf.push(Event {
            kind,
            name: Cow::Borrowed(name),
            cat: Cow::Borrowed(cat),
            rank: self.rank,
            tid: self.tid,
            ts_us,
            flow,
            args: args.iter().map(|&(k, v)| (Cow::Borrowed(k), v)).collect(),
        });
    }

    /// Open a span. Spans must close LIFO per `(rank, tid)` lane.
    #[inline]
    pub fn begin(&mut self, name: &'static str, cat: &'static str, args: &[(&'static str, u64)]) {
        self.push(EventKind::Begin, name, cat, 0, args);
    }

    /// Close the innermost open span on this lane.
    #[inline]
    pub fn end(&mut self) {
        self.push(EventKind::End, "", "", 0, &[]);
    }

    /// Record a zero-duration marker.
    #[inline]
    pub fn instant(&mut self, name: &'static str, cat: &'static str, args: &[(&'static str, u64)]) {
        self.push(EventKind::Instant, name, cat, 0, args);
    }

    /// Record a flow-arrow tail with id `flow`.
    #[inline]
    pub fn flow_start(
        &mut self,
        name: &'static str,
        cat: &'static str,
        flow: u64,
        args: &[(&'static str, u64)],
    ) {
        self.push(EventKind::FlowStart, name, cat, flow, args);
    }

    /// Record a flow-arrow head with id `flow`.
    #[inline]
    pub fn flow_end(
        &mut self,
        name: &'static str,
        cat: &'static str,
        flow: u64,
        args: &[(&'static str, u64)],
    ) {
        self.push(EventKind::FlowEnd, name, cat, flow, args);
    }

    /// Record a counter sample.
    #[inline]
    pub fn counter(&mut self, name: &'static str, args: &[(&'static str, u64)]) {
        self.push(EventKind::Counter, name, "counter", 0, args);
    }

    /// Drain the buffer into the tracer (one mutex acquisition).
    pub fn submit(&mut self) {
        if !self.buf.is_empty() {
            self.tracer.record_many(std::mem::take(&mut self.buf));
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.submit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_parse() {
        assert!(TraceLevel::Comm > TraceLevel::Task);
        assert!(TraceLevel::Task > TraceLevel::Phase);
        assert!(TraceLevel::Phase > TraceLevel::Off);
        for l in [
            TraceLevel::Off,
            TraceLevel::Phase,
            TraceLevel::Task,
            TraceLevel::Comm,
        ] {
            assert_eq!(TraceLevel::parse(l.label()), Some(l));
        }
        assert_eq!(TraceLevel::parse("verbose"), None);
    }

    #[test]
    fn off_tracer_records_nothing() {
        let t = Arc::new(Tracer::off());
        assert!(!t.enabled(TraceLevel::Phase));
        let mut l = t.local(0, 0);
        l.begin("x", "phase", &[]);
        l.end();
        l.submit();
        t.record_span(0, 0, "y", "phase", 0.0, 1.0, &[]);
        // Local pushes unconditionally into its buffer; record_many and
        // record_span drop everything when the level is Off.
        assert!(t.drain().is_empty());
    }

    #[test]
    fn local_buffers_submit_in_order() {
        let t = Arc::new(Tracer::new(TraceLevel::Comm));
        let mut l = t.local(2, 1);
        l.begin("U-list", "task", &[("task", 7)]);
        l.instant("send", "comm", &[("peer", 3), ("bytes", 64)]);
        l.end();
        drop(l); // implicit submit
        let evs = t.drain();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, EventKind::Begin);
        assert_eq!(evs[0].rank, 2);
        assert_eq!(evs[0].tid, 1);
        assert_eq!(evs[0].args, vec![(Cow::Borrowed("task"), 7)]);
        assert!(evs[0].ts_us <= evs[1].ts_us && evs[1].ts_us <= evs[2].ts_us);
    }

    #[test]
    fn flow_ids_unique_across_threads() {
        let t = Arc::new(Tracer::new(TraceLevel::Comm));
        let mut ids: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let t = Arc::clone(&t);
                    s.spawn(move || (0..100).map(|_| t.alloc_flow()).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
        let base = t.alloc_flows(10);
        assert_eq!(t.alloc_flow(), base + 10);
    }

    #[test]
    fn tid_labels() {
        assert_eq!(tid_label(TID_MAIN), "driver");
        assert_eq!(tid_label(tid_worker(0)), "worker 0");
        assert_eq!(tid_label(tid_worker(3)), "worker 3");
        assert_eq!(tid_label(TID_GPU), "gpu");
    }
}
