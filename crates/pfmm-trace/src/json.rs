//! A minimal JSON reader/writer (the build has no serde): just enough to
//! emit and re-parse Chrome trace-event files. Objects preserve key
//! order; numbers are f64.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The f64 payload of a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object payload.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
///
/// # Errors
/// Returns a message with a byte offset on malformed input or trailing
/// garbage.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Result<u8, String> {
        self.b
            .get(self.i)
            .copied()
            .ok_or_else(|| format!("unexpected end of input at byte {}", self.i))
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found '{}'",
                c as char, self.i, self.b[self.i] as char
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.lit("true", Value::Bool(true)),
            b'f' => self.lit("false", Value::Bool(false)),
            b'n' => self.lit("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected '{}' at byte {}", c as char, self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek()? == b'-' {
            self.i += 1;
        }
        while self.i < self.b.len()
            && matches!(
                self.b[self.i],
                b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'
            )
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek()?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek()?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.i += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i - 1)),
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 char starting at i-1.
                    let rest = &self.b[self.i - 1..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let ch = s.chars().next().ok_or("empty char")?;
                    out.push(ch);
                    self.i += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                c => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found '{}'",
                        self.i, c as char
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            out.push((k, v));
            self.ws();
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                c => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found '{}'",
                        self.i, c as char
                    ))
                }
            }
        }
    }
}

/// Append `s` as a quoted, escaped JSON string.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Num(-350.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Value::Str("a\nb".to_string()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a":[1,2,{"b":"x"}],"c":{}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_obj(), Some(&[][..]));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn escape_round_trip() {
        let mut s = String::new();
        push_escaped(&mut s, "x\"\\\n\tπ\u{1}");
        let back = parse(&s).unwrap();
        assert_eq!(back.as_str(), Some("x\"\\\n\tπ\u{1}"));
    }

    #[test]
    fn f64_display_round_trips() {
        for x in [0.0, 1.5, 123456.789012, 1e-9, 3.141592653589793e6] {
            let s = format!("{x}");
            assert_eq!(parse(&s).unwrap().as_num(), Some(x));
        }
    }
}
