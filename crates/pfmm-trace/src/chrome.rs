//! Chrome trace-event JSON export and re-import.
//!
//! The emitted file is the JSON-object form of the trace-event format
//! (`{"traceEvents":[...]}`), loadable by `chrome://tracing` and by
//! [Perfetto](https://ui.perfetto.dev) ("Open trace file"). Mapping:
//!
//! - one **pid** per simulated rank (named `rank N` via `M` metadata),
//! - one **tid** per lane within the rank (driver, workers, gpu),
//! - spans are `B`/`E` pairs, instants are `i` (thread scope),
//! - flow arrows are `s`/`f` pairs sharing an `id` (`bp:"e"` so the head
//!   binds to the enclosing slice's start), and
//! - counters are `C` events.
//!
//! The parser inverts the exporter exactly (metadata events are dropped),
//! so `parse(to_json_string(evs)) == evs` — the round-trip property the
//! tests rely on. Arg values are integers ≤ 2^53 (they round-trip through
//! JSON's f64 numbers losslessly).

use crate::json::{self, Value};
use crate::{tid_label, Event, EventKind, Str};
use std::borrow::Cow;
use std::fmt::Write as _;

/// Serialize events to a Chrome trace-event JSON document, prepending
/// process/thread-name metadata for every `(rank, tid)` lane observed.
pub fn to_json_string(events: &[Event]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;

    // Metadata: name each pid and tid once, in first-appearance order.
    let mut lanes: Vec<(u32, u32)> = Vec::new();
    let mut ranks: Vec<u32> = Vec::new();
    for e in events {
        if !ranks.contains(&e.rank) {
            ranks.push(e.rank);
        }
        if !lanes.contains(&(e.rank, e.tid)) {
            lanes.push((e.rank, e.tid));
        }
    }
    for r in &ranks {
        emit_meta(
            &mut out,
            &mut first,
            *r,
            0,
            "process_name",
            &format!("rank {r}"),
        );
        // Sort lanes of a rank by tid so Perfetto's track order is stable.
        emit_meta(&mut out, &mut first, *r, 0, "process_sort_index", "");
    }
    for (r, t) in &lanes {
        emit_meta(&mut out, &mut first, *r, *t, "thread_name", &tid_label(*t));
    }

    for e in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ph = match e.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
            EventKind::FlowStart => "s",
            EventKind::FlowEnd => "f",
            EventKind::Counter => "C",
        };
        let _ = write!(
            out,
            "{{\"ph\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}",
            ph, e.rank, e.tid, e.ts_us
        );
        if !e.name.is_empty() {
            out.push_str(",\"name\":");
            json::push_escaped(&mut out, &e.name);
        }
        if !e.cat.is_empty() {
            out.push_str(",\"cat\":");
            json::push_escaped(&mut out, &e.cat);
        }
        match e.kind {
            EventKind::Instant => out.push_str(",\"s\":\"t\""),
            EventKind::FlowStart => {
                let _ = write!(out, ",\"id\":{}", e.flow);
            }
            EventKind::FlowEnd => {
                let _ = write!(out, ",\"id\":{},\"bp\":\"e\"", e.flow);
            }
            _ => {}
        }
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_escaped(&mut out, k);
                let _ = write!(out, ":{v}");
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

fn emit_meta(out: &mut String, first: &mut bool, pid: u32, tid: u32, name: &str, value: &str) {
    if name == "process_sort_index" {
        // Keep rank order in the UI equal to rank id.
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"process_sort_index\",\"args\":{{\"sort_index\":{pid}}}}}"
        );
        return;
    }
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{name}\",\"args\":{{\"name\":"
    );
    json::push_escaped(out, value);
    out.push_str("}}");
}

/// Parse a Chrome trace-event JSON document back into events. Accepts
/// both the object form (`{"traceEvents":[...]}`) and a bare array.
/// Metadata (`M`) events are dropped; everything else must be an event
/// kind this crate emits.
///
/// # Errors
/// Returns a description of the first malformed event (or JSON error).
pub fn parse(s: &str) -> Result<Vec<Event>, String> {
    let doc = json::parse(s)?;
    let arr = match &doc {
        Value::Arr(_) => &doc,
        Value::Obj(_) => doc.get("traceEvents").ok_or("missing traceEvents member")?,
        _ => return Err("top level is not an object or array".to_string()),
    };
    let arr = arr.as_arr().ok_or("traceEvents is not an array")?;
    let mut out = Vec::with_capacity(arr.len());
    for (i, v) in arr.iter().enumerate() {
        let ph = v
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let kind = match ph {
            "B" => EventKind::Begin,
            "E" => EventKind::End,
            "i" | "I" => EventKind::Instant,
            "s" => EventKind::FlowStart,
            "f" => EventKind::FlowEnd,
            "C" => EventKind::Counter,
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        };
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| format!("event {i}: missing numeric {key}"))
        };
        let mut args: Vec<(Str, u64)> = Vec::new();
        if let Some(a) = v.get("args").and_then(Value::as_obj) {
            for (k, av) in a {
                let n = av
                    .as_num()
                    .ok_or_else(|| format!("event {i}: non-numeric arg {k:?}"))?;
                args.push((Cow::Owned(k.clone()), n as u64));
            }
        }
        out.push(Event {
            kind,
            name: Cow::Owned(
                v.get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
            ),
            cat: Cow::Owned(
                v.get("cat")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
            ),
            rank: num("pid")? as u32,
            tid: num("tid")? as u32,
            ts_us: num("ts")?,
            flow: match kind {
                EventKind::FlowStart | EventKind::FlowEnd => num("id")? as u64,
                _ => 0,
            },
            args,
        });
    }
    Ok(out)
}

/// Summary returned by [`validate`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ValidateStats {
    /// Complete `B`/`E` spans.
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Matched flow `s`/`f` pairs.
    pub flows: usize,
    /// Counter samples.
    pub counters: usize,
    /// Distinct `(rank, tid)` lanes.
    pub lanes: usize,
}

/// Structural validation: spans strictly nested (LIFO, `E` never before
/// its `B`, timestamps monotone within a lane's span stack) per
/// `(rank, tid)` lane, every flow id used by exactly one start and one
/// matching end with `start.ts <= end.ts`.
///
/// # Errors
/// Returns the first violation found.
pub fn validate(events: &[Event]) -> Result<ValidateStats, String> {
    use std::collections::HashMap;
    let mut stats = ValidateStats::default();
    let mut stacks: HashMap<(u32, u32), Vec<f64>> = HashMap::new();
    let mut flows: HashMap<u64, (usize, usize, f64, f64)> = HashMap::new(); // id -> (starts, ends, ts_s, ts_f)
    for (i, e) in events.iter().enumerate() {
        if !e.ts_us.is_finite() || e.ts_us < 0.0 {
            return Err(format!("event {i}: bad timestamp {}", e.ts_us));
        }
        match e.kind {
            EventKind::Begin => {
                stacks.entry((e.rank, e.tid)).or_default().push(e.ts_us);
            }
            EventKind::End => {
                let stack = stacks.entry((e.rank, e.tid)).or_default();
                let t0 = stack.pop().ok_or_else(|| {
                    format!(
                        "event {i}: E without open B on rank {} tid {}",
                        e.rank, e.tid
                    )
                })?;
                if e.ts_us < t0 {
                    return Err(format!(
                        "event {i}: span ends before it begins ({} < {t0})",
                        e.ts_us
                    ));
                }
                stats.spans += 1;
            }
            EventKind::Instant => stats.instants += 1,
            EventKind::FlowStart => {
                let f = flows.entry(e.flow).or_insert((0, 0, 0.0, 0.0));
                f.0 += 1;
                f.2 = e.ts_us;
            }
            EventKind::FlowEnd => {
                let f = flows.entry(e.flow).or_insert((0, 0, 0.0, 0.0));
                f.1 += 1;
                f.3 = e.ts_us;
            }
            EventKind::Counter => stats.counters += 1,
        }
    }
    for ((rank, tid), stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "rank {rank} tid {tid}: {} span(s) left open",
                stack.len()
            ));
        }
    }
    for (id, (ns, nf, ts, tf)) in &flows {
        if *ns != 1 || *nf != 1 {
            return Err(format!("flow {id}: {ns} start(s), {nf} end(s)"));
        }
        if tf < ts {
            return Err(format!("flow {id}: ends at {tf} before start {ts}"));
        }
        stats.flows += 1;
    }
    let mut lanes: Vec<(u32, u32)> = events.iter().map(|e| (e.rank, e.tid)).collect();
    lanes.sort_unstable();
    lanes.dedup();
    stats.lanes = lanes.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceLevel, Tracer};
    use std::sync::Arc;

    fn sample_events() -> Vec<Event> {
        let t = Arc::new(Tracer::new(TraceLevel::Comm));
        let mut a = t.local(0, 0);
        a.begin("Upward", "phase", &[("level", 3)]);
        a.instant("send", "comm", &[("peer", 1), ("bytes", 128), ("tag", 16)]);
        a.flow_start("msg", "comm", 7, &[]);
        a.end();
        a.counter("sent_bytes", &[("bytes", 128)]);
        a.submit();
        let mut b = t.local(1, 2);
        b.begin("U-list", "task", &[("task", 4)]);
        b.flow_end("msg", "comm", 7, &[]);
        b.end();
        b.submit();
        t.drain()
    }

    #[test]
    fn round_trip_exact() {
        let evs = sample_events();
        let s = to_json_string(&evs);
        let back = parse(&s).unwrap();
        assert_eq!(back, evs);
    }

    #[test]
    fn output_is_valid_and_counted() {
        let evs = sample_events();
        let st = validate(&evs).unwrap();
        assert_eq!(st.spans, 2);
        assert_eq!(st.instants, 1);
        assert_eq!(st.flows, 1);
        assert_eq!(st.counters, 1);
        assert_eq!(st.lanes, 2);
    }

    #[test]
    fn metadata_names_lanes() {
        let s = to_json_string(&sample_events());
        assert!(s.contains(r#""name":"process_name","args":{"name":"rank 0"}"#));
        assert!(s.contains(r#""name":"thread_name","args":{"name":"worker 1"}"#));
        assert!(s.contains(r#""name":"thread_name","args":{"name":"driver"}"#));
    }

    #[test]
    fn validate_rejects_malformed() {
        let mut evs = sample_events();
        evs.retain(|e| e.kind != EventKind::End); // leave spans open
        assert!(validate(&evs).is_err());

        let mut one_sided = sample_events();
        one_sided.retain(|e| e.kind != EventKind::FlowEnd);
        assert!(validate(&one_sided).is_err());
    }

    #[test]
    fn parse_accepts_bare_array_and_skips_metadata() {
        let evs = parse(r#"[{"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"x"}},{"ph":"i","pid":3,"tid":1,"ts":2.5,"name":"n","cat":"c","s":"t"}]"#).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].rank, 3);
        assert_eq!(evs[0].ts_us, 2.5);
    }
}
