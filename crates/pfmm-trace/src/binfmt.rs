//! A compact self-describing binary trace encoding, used by tests (and
//! anywhere JSON is too bulky).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  b"PFMMTRC1"
//! u32    string-table length S; then S × { u32 len, utf-8 bytes }
//! u32    event count N; then N × {
//!            u8  kind        (0=B 1=E 2=i 3=s 4=f 5=C)
//!            u32 name idx    (into the string table)
//!            u32 cat idx
//!            u32 rank, u32 tid
//!            f64 ts_us (bits), u64 flow
//!            u16 nargs; nargs × { u32 key idx, u64 value }
//!        }
//! ```
//!
//! Every string (names, categories, arg keys) is interned once, so the
//! encoding is typically ~10× smaller than the JSON form.

use crate::{Event, EventKind, Str};
use std::borrow::Cow;
use std::collections::HashMap;

const MAGIC: &[u8; 8] = b"PFMMTRC1";

fn kind_code(k: EventKind) -> u8 {
    match k {
        EventKind::Begin => 0,
        EventKind::End => 1,
        EventKind::Instant => 2,
        EventKind::FlowStart => 3,
        EventKind::FlowEnd => 4,
        EventKind::Counter => 5,
    }
}

fn code_kind(c: u8) -> Option<EventKind> {
    Some(match c {
        0 => EventKind::Begin,
        1 => EventKind::End,
        2 => EventKind::Instant,
        3 => EventKind::FlowStart,
        4 => EventKind::FlowEnd,
        5 => EventKind::Counter,
        _ => return None,
    })
}

/// Encode events to the binary form.
pub fn encode(events: &[Event]) -> Vec<u8> {
    // Two passes: intern every string, then emit.
    let mut strings: Vec<&str> = Vec::new();
    let mut index: HashMap<&str, u32> = HashMap::new();
    for e in events {
        for s in std::iter::once(&*e.name)
            .chain(std::iter::once(&*e.cat))
            .chain(e.args.iter().map(|(k, _)| &**k))
        {
            index.entry(s).or_insert_with(|| {
                strings.push(s);
                (strings.len() - 1) as u32
            });
        }
    }

    let mut out = Vec::with_capacity(32 + events.len() * 48);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(strings.len() as u32).to_le_bytes());
    for s in &strings {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
    out.extend_from_slice(&(events.len() as u32).to_le_bytes());
    for e in events {
        out.push(kind_code(e.kind));
        out.extend_from_slice(&index[&*e.name].to_le_bytes());
        out.extend_from_slice(&index[&*e.cat].to_le_bytes());
        out.extend_from_slice(&e.rank.to_le_bytes());
        out.extend_from_slice(&e.tid.to_le_bytes());
        out.extend_from_slice(&e.ts_us.to_bits().to_le_bytes());
        out.extend_from_slice(&e.flow.to_le_bytes());
        out.extend_from_slice(&(e.args.len() as u16).to_le_bytes());
        for (k, v) in &e.args {
            out.extend_from_slice(&index[&**k].to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.i + n > self.b.len() {
            return Err(format!("truncated at byte {}", self.i));
        }
        let s = &self.b[self.i..self.i + n];
        self.i += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
}

/// Decode a binary trace.
///
/// # Errors
/// Returns a message on bad magic, truncation, or dangling indices.
pub fn decode(b: &[u8]) -> Result<Vec<Event>, String> {
    let mut r = Reader { b, i: 0 };
    if r.bytes(8)? != MAGIC {
        return Err("bad magic (not a pfmm binary trace)".to_string());
    }
    let ns = r.u32()? as usize;
    let mut strings: Vec<String> = Vec::with_capacity(ns);
    for _ in 0..ns {
        let len = r.u32()? as usize;
        let s = std::str::from_utf8(r.bytes(len)?)
            .map_err(|_| "invalid utf-8 in string table".to_string())?;
        strings.push(s.to_string());
    }
    let lookup = |idx: u32| -> Result<Str, String> {
        strings
            .get(idx as usize)
            .map(|s| Cow::Owned(s.clone()))
            .ok_or_else(|| format!("string index {idx} out of range"))
    };
    let ne = r.u32()? as usize;
    let mut out = Vec::with_capacity(ne);
    for _ in 0..ne {
        let kind = code_kind(r.u8()?).ok_or("unknown event kind")?;
        let name = lookup(r.u32()?)?;
        let cat = lookup(r.u32()?)?;
        let rank = r.u32()?;
        let tid = r.u32()?;
        let ts_us = f64::from_bits(r.u64()?);
        let flow = r.u64()?;
        let nargs = r.u16()? as usize;
        let mut args = Vec::with_capacity(nargs);
        for _ in 0..nargs {
            let k = lookup(r.u32()?)?;
            let v = r.u64()?;
            args.push((k, v));
        }
        out.push(Event {
            kind,
            name,
            cat,
            rank,
            tid,
            ts_us,
            flow,
            args,
        });
    }
    if r.i != b.len() {
        return Err(format!("{} trailing byte(s)", b.len() - r.i));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceLevel, Tracer};
    use std::sync::Arc;

    #[test]
    fn round_trip_bitwise_timestamps() {
        let t = Arc::new(Tracer::new(TraceLevel::Comm));
        let mut l = t.local(3, 1);
        l.begin("V-list", "task", &[("task", 11), ("edges", 316)]);
        l.flow_start("dep", "sched", 42, &[("src", 1), ("dst", 2)]);
        l.end();
        l.instant("recv", "comm", &[("peer", 0), ("bytes", 4096)]);
        l.submit();
        let evs = t.drain();
        let bin = encode(&evs);
        let back = decode(&bin).unwrap();
        assert_eq!(back, evs);
        // f64 bits survive exactly (no text formatting involved).
        for (a, b) in back.iter().zip(&evs) {
            assert_eq!(a.ts_us.to_bits(), b.ts_us.to_bits());
        }
    }

    #[test]
    fn rejects_corruption() {
        assert!(decode(b"NOTATRACE").is_err());
        let t = Arc::new(Tracer::new(TraceLevel::Phase));
        t.record_span(0, 0, "Upward", "phase", 0.0, 5.0, &[]);
        let mut bin = encode(&t.drain());
        bin.truncate(bin.len() - 3);
        assert!(decode(&bin).is_err());
    }

    #[test]
    fn interning_compacts() {
        let t = Arc::new(Tracer::new(TraceLevel::Comm));
        let mut l = t.local(0, 0);
        for _ in 0..100 {
            l.instant("send", "comm", &[("peer", 1), ("bytes", 64)]);
        }
        l.submit();
        let evs = t.drain();
        let bin = encode(&evs);
        let json = crate::chrome::to_json_string(&evs);
        assert!(
            bin.len() * 3 < json.len() * 2,
            "{} vs {}",
            bin.len(),
            json.len()
        );
    }
}
