//! Round-trip property tests for the trace exporters: serialize →
//! parse → identical events, with spans strictly nested per lane and
//! every flow id matched.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::borrow::Cow;

use pfmm_trace::chrome;
use pfmm_trace::{binfmt, Event, EventKind};

const NAMES: [&str; 6] = [
    "Upward",
    "U-list",
    "send",
    "dep",
    "π/θ \"quoted\"",
    "a\\b\nc",
];
const CATS: [&str; 4] = ["phase", "task", "comm", "sched"];

/// Generate a structurally valid random event stream: per-lane strictly
/// nested spans, instants/counters sprinkled in, and flow pairs whose
/// end never precedes its start.
fn gen_events(seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lanes = 1 + rng.random_below(4) as usize;
    let mut evs: Vec<Event> = Vec::new();
    let mut clock = 0.0f64;
    let tick = |rng: &mut StdRng, clock: &mut f64| {
        *clock += rng.random::<f64>() * 10.0;
        *clock
    };
    let mut open: Vec<Vec<usize>> = vec![Vec::new(); lanes]; // depth markers
    let mut pending_flows: Vec<u64> = Vec::new();
    let mut next_flow = 1u64;
    for _ in 0..(10 + rng.random_below(60)) {
        let lane = rng.random_below(lanes as u64) as usize;
        let (rank, tid) = ((lane / 2) as u32, (lane % 2) as u32);
        let name = NAMES[rng.random_below(NAMES.len() as u64) as usize];
        let cat = CATS[rng.random_below(CATS.len() as u64) as usize];
        let ts_us = tick(&mut rng, &mut clock);
        let mut e = Event {
            kind: EventKind::Instant,
            name: Cow::Borrowed(name),
            cat: Cow::Borrowed(cat),
            rank,
            tid,
            ts_us,
            flow: 0,
            args: Vec::new(),
        };
        for _ in 0..rng.random_below(3) {
            let k = ["peer", "bytes", "task", "level"][rng.random_below(4) as usize];
            // Keep values ≤ 2^53 so the JSON number round-trip is exact.
            e.args.push((Cow::Borrowed(k), rng.next_u64() >> 11));
        }
        match rng.random_below(6) {
            0 | 1 => {
                e.kind = EventKind::Begin;
                open[lane].push(evs.len());
                evs.push(e);
            }
            2 => {
                if open[lane].pop().is_some() {
                    e.kind = EventKind::End;
                    e.name = Cow::Borrowed("");
                    e.cat = Cow::Borrowed("");
                    e.args.clear();
                    evs.push(e);
                }
            }
            3 => {
                e.kind = EventKind::FlowStart;
                e.flow = next_flow;
                pending_flows.push(next_flow);
                next_flow += 1;
                evs.push(e);
            }
            4 => {
                if let Some(f) = pending_flows.pop() {
                    e.kind = EventKind::FlowEnd;
                    e.flow = f;
                    evs.push(e);
                }
            }
            _ => {
                if rng.random::<f64>() < 0.5 {
                    e.kind = EventKind::Counter;
                }
                evs.push(e);
            }
        }
    }
    // Close whatever is still open (innermost first) and finish flows.
    for (lane, stack) in open.iter_mut().enumerate() {
        while stack.pop().is_some() {
            let ts_us = tick(&mut rng, &mut clock);
            evs.push(Event {
                kind: EventKind::End,
                name: Cow::Borrowed(""),
                cat: Cow::Borrowed(""),
                rank: (lane / 2) as u32,
                tid: (lane % 2) as u32,
                ts_us,
                flow: 0,
                args: Vec::new(),
            });
        }
    }
    for f in pending_flows.drain(..) {
        let ts_us = tick(&mut rng, &mut clock);
        evs.push(Event {
            kind: EventKind::FlowEnd,
            name: Cow::Borrowed("dep"),
            cat: Cow::Borrowed("sched"),
            rank: 0,
            tid: 0,
            ts_us,
            flow: f,
            args: Vec::new(),
        });
    }
    evs
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn chrome_round_trip(seed in 0u64..1_000_000) {
        let evs = gen_events(seed);
        let json = chrome::to_json_string(&evs);
        let back = chrome::parse(&json).expect("exporter output must parse");
        prop_assert_eq!(&back, &evs);
        // Structural guarantees: strict nesting per tid, matched flows.
        let st = chrome::validate(&back).expect("exporter output must validate");
        let begins = evs.iter().filter(|e| e.kind == EventKind::Begin).count();
        prop_assert_eq!(st.spans, begins);
    }

    #[test]
    fn binary_round_trip(seed in 0u64..1_000_000) {
        let evs = gen_events(seed);
        let back = binfmt::decode(&binfmt::encode(&evs)).expect("binary decode");
        prop_assert_eq!(back, evs);
    }
}
