//! Property tests of the log-bucketed latency histogram against an
//! exact sorted-quantile oracle.

use proptest::prelude::*;

use pfmm_trace::metrics::Histogram;

/// Exact order-statistic oracle: `sorted[ceil(q·n) - 1]`.
fn oracle(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let k = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[k - 1]
}

/// One bucket width around `v`, the histogram's promised tolerance.
fn tol(v: f64) -> f64 {
    v.abs() * Histogram::relative_error_at(v.max(1e-6)) + 1e-12
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every quantile estimate lands within one bucket width of the
    /// exact order statistic, across scales spanning nine decades.
    #[test]
    fn quantiles_within_one_bucket_of_oracle(
        samples in prop::collection::vec((0.0f64..1.0, 0u8..8), 1..400),
    ) {
        let mut h = Histogram::new();
        let mut vals: Vec<f64> = samples
            .iter()
            // Spread mantissas over decades: u ∈ [0,1) scaled by 10^d.
            .map(|&(u, d)| (0.5 + u) * 10f64.powi(d as i32 - 3))
            .collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_by(f64::total_cmp);
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let want = oracle(&vals, q);
            let got = h.quantile(q);
            prop_assert!(
                (got - want).abs() <= tol(want),
                "q={q}: histogram {got} vs oracle {want} (n={})",
                vals.len()
            );
        }
        // The named accessors are exactly the corresponding quantiles.
        prop_assert_eq!(h.p999(), h.quantile(0.999));
        prop_assert_eq!(h.count(), vals.len() as u64);
        prop_assert_eq!(h.min(), vals[0]);
        prop_assert_eq!(h.max(), *vals.last().unwrap());
        // Exact-sum accessor against the oracle's accumulation order.
        let want_sum: f64 = samples
            .iter()
            .map(|&(u, d)| (0.5 + u) * 10f64.powi(d as i32 - 3))
            .sum();
        prop_assert_eq!(h.sum(), want_sum);
    }

    /// An external collector that buckets with `bucket_index` and
    /// rehydrates through `from_parts` (the pfmm-metrics atomic
    /// histogram protocol) is indistinguishable from recording
    /// directly — same counts, same quantiles, bit for bit.
    #[test]
    fn from_parts_round_trips_external_bucketing(
        vals in prop::collection::vec(1e-6f64..1e6, 0..200),
    ) {
        let mut direct = Histogram::new();
        let mut counts = vec![0u64; Histogram::num_buckets()];
        let mut sum = 0.0;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &vals {
            direct.record(v);
            counts[Histogram::bucket_index(v)] += 1;
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        let rebuilt = Histogram::from_parts(counts, sum, min, max);
        prop_assert_eq!(rebuilt.count(), direct.count());
        prop_assert_eq!(rebuilt.sum(), direct.sum());
        prop_assert_eq!(rebuilt.min(), direct.min());
        prop_assert_eq!(rebuilt.max(), direct.max());
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 0.999, 1.0] {
            prop_assert_eq!(rebuilt.quantile(q), direct.quantile(q));
        }
    }

    /// Merging partial histograms is exactly equivalent to recording
    /// everything into one — the property worker-sharded latency
    /// collection relies on.
    #[test]
    fn merge_equals_single_recording(
        a in prop::collection::vec(1e-3f64..1e3, 0..120),
        b in prop::collection::vec(1e-3f64..1e3, 0..120),
    ) {
        let mut whole = Histogram::new();
        let (mut ha, mut hb) = (Histogram::new(), Histogram::new());
        for &v in &a {
            whole.record(v);
            ha.record(v);
        }
        for &v in &b {
            whole.record(v);
            hb.record(v);
        }
        ha.merge(&hb);
        // Bucket counts merge exactly, so every quantile is identical;
        // only the running mean differs by summation order.
        prop_assert_eq!(ha.count(), whole.count());
        prop_assert_eq!(ha.min(), whole.min());
        prop_assert_eq!(ha.max(), whole.max());
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(ha.quantile(q), whole.quantile(q));
        }
        prop_assert!((ha.mean() - whole.mean()).abs() <= 1e-9 * whole.mean().abs());
    }
}

#[test]
fn empty_histogram_is_inert() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.quantile(0.5), 0.0);
    assert_eq!(h.mean(), 0.0);
}

#[test]
fn single_value_quantiles_are_exact() {
    let mut h = Histogram::new();
    h.record(42.0);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 42.0, "clamped to observed min/max");
    }
    assert_eq!(h.mean(), 42.0);
}

#[test]
fn extreme_values_clamp_without_panicking() {
    let mut h = Histogram::new();
    for v in [0.0, -1.0, f64::NAN, 1e300, f64::INFINITY, 1e-300] {
        h.record(v);
    }
    assert_eq!(h.count(), 6);
    assert!(h.quantile(0.5).is_finite() || h.max().is_infinite());
}
