//! Trace emission from the graph executor: spans/flows are structurally
//! valid, and the trace-derived metrics reproduce the executor's own
//! report (overlap to 1e-9, critical path likewise).

use std::sync::Arc;
use std::time::{Duration, Instant};

use pfmm_sched::{run_with, CommPoll, Graph, TraceCtx};
use pfmm_trace::{chrome, metrics, EventKind, TraceLevel, Tracer};

fn spin(d: Duration) {
    let t0 = Instant::now();
    while t0.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// A diamond with a comm window gating the join:
/// a → {b, c, comm} ; d depends on {b, c, comm}.
fn build_and_run(tracer: &Arc<Tracer>, rank: u32) -> pfmm_sched::RunReport {
    let mut g = Graph::new();
    let a = g.task("Upward", &[], || spin(Duration::from_millis(4)));
    let b = g.task("U-list", &[a], || spin(Duration::from_millis(8)));
    let c = g.task("V-list", &[a], || spin(Duration::from_millis(8)));
    let t0 = Instant::now();
    let comm = g.comm("Comm.", &[a], move || {
        if t0.elapsed() > Duration::from_millis(12) {
            CommPoll::Ready
        } else {
            CommPoll::Pending
        }
    });
    let _d = g.task("Downward", &[b, c, comm], || spin(Duration::from_millis(2)));
    run_with(
        g,
        2,
        Some(TraceCtx {
            tracer: tracer.as_ref(),
            rank,
        }),
    )
    .expect("acyclic")
}

#[test]
fn task_level_trace_is_valid_and_complete() {
    let tracer = Arc::new(Tracer::new(TraceLevel::Task));
    let rep = build_and_run(&tracer, 0);
    let evs = tracer.drain();
    let st = chrome::validate(&evs).expect("structurally valid");
    assert_eq!(st.spans, 5, "one span per task");
    assert_eq!(st.flows, 6, "one flow per dependency edge");
    // Spans survive the JSON round trip.
    let back = chrome::parse(&chrome::to_json_string(&evs)).unwrap();
    assert_eq!(back, evs);
    // Phase seconds recoverable from the trace agree with the report.
    for cat in ["task", "comm"] {
        for stat in metrics::load_imbalance(&evs, cat) {
            let want = rep.phase_secs[stat.name.as_str()];
            assert!(
                (stat.max_secs - want).abs() < 1e-9,
                "{}: {} vs {}",
                stat.name,
                stat.max_secs,
                want
            );
        }
    }
    assert_eq!(rep.tasks, 5);
}

#[test]
fn overlap_and_critical_path_match_span_derived_values() {
    let tracer = Arc::new(Tracer::new(TraceLevel::Task));
    let rep = build_and_run(&tracer, 3);
    let evs = tracer.drain();
    let overlap = metrics::overlap_secs(&evs, 3);
    assert!(
        (overlap - rep.overlap_secs).abs() < 1e-9,
        "span-derived {overlap} vs report {}",
        rep.overlap_secs
    );
    assert!(rep.overlap_secs > 0.0, "b/c should overlap the comm window");
    let cp = metrics::critical_path_secs(&evs, 3);
    assert!(
        (cp - rep.critical_path_secs).abs() < 1e-9,
        "span-derived {cp} vs report {}",
        rep.critical_path_secs
    );
    // The diamond's longest chain includes a and d plus the slower of
    // b/c/comm; it can't beat the largest single task and can't exceed
    // the serial sum.
    let serial: f64 = rep.phase_secs.values().sum();
    assert!(rep.critical_path_secs <= serial + 1e-9);
    assert!(rep.critical_path_secs >= rep.phase_secs["Comm."]);
}

#[test]
fn phase_level_emits_only_comm_windows() {
    let tracer = Arc::new(Tracer::new(TraceLevel::Phase));
    build_and_run(&tracer, 0);
    let evs = tracer.drain();
    let st = chrome::validate(&evs).unwrap();
    assert_eq!(st.spans, 1, "just the comm window");
    assert_eq!(st.flows, 0);
    assert!(evs
        .iter()
        .filter(|e| e.kind == EventKind::Begin)
        .all(|e| e.cat == "comm"));
}

#[test]
fn off_level_emits_nothing_and_reports_same_shape() {
    let tracer = Arc::new(Tracer::off());
    let rep = build_and_run(&tracer, 0);
    assert!(tracer.drain().is_empty());
    assert_eq!(rep.tasks, 5);
    assert!(rep.critical_path_secs > 0.0);
}
