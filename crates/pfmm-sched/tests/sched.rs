//! Scheduler contract tests: determinism across worker counts, cycle
//! rejection, comm-task ordering and the overlap metric.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pfmm_sched::{run, CommPoll, Graph, GraphBuf, Slot};

/// Build a graph that fills a buffer through per-chunk chains of
/// floating-point accumulations (the accumulation order within each
/// chunk is fixed by dependency edges), run it, and return the result.
fn chunked_pipeline(workers: usize) -> Vec<f64> {
    const N: usize = 4096;
    const CHUNK: usize = 256;
    let buf = GraphBuf::new(vec![0.0f64; N]);
    {
        let mut g = Graph::new();
        for (k, start) in (0..N).step_by(CHUNK).enumerate() {
            let b = &buf;
            let init = g.task("init", &[], move || {
                // Safety: each chunk task owns its disjoint range and the
                // per-chunk chain orders the writers.
                let s = unsafe { b.slice_mut(start, CHUNK) };
                for (i, x) in s.iter_mut().enumerate() {
                    *x = ((start + i) as f64 * 0.37 + k as f64).sin();
                }
            });
            let accum = g.task("accum", &[init], move || {
                let s = unsafe { b.slice_mut(start, CHUNK) };
                // A running sum whose rounding depends on order — any
                // scheduler-induced reordering would change the bits.
                let mut acc = 0.0f64;
                for x in s.iter_mut() {
                    acc += *x * 1.000000119;
                    *x = acc;
                }
            });
            g.task("scale", &[accum], move || {
                let s = unsafe { b.slice_mut(start, CHUNK) };
                for x in s.iter_mut() {
                    *x *= 0.5;
                }
            });
        }
        let rep = run(g, workers).expect("acyclic");
        assert_eq!(rep.tasks, 3 * N / CHUNK);
        assert!(rep.phase_secs.contains_key("accum"));
    }
    buf.into_inner()
}

#[test]
fn identical_bits_under_1_2_8_workers() {
    let r1 = chunked_pipeline(1);
    let r2 = chunked_pipeline(2);
    let r8 = chunked_pipeline(8);
    assert!(r1.iter().any(|&x| x != 0.0), "pipeline produced data");
    for i in 0..r1.len() {
        assert_eq!(r1[i].to_bits(), r2[i].to_bits(), "1 vs 2 workers at {i}");
        assert_eq!(r1[i].to_bits(), r8[i].to_bits(), "1 vs 8 workers at {i}");
    }
}

#[test]
fn cycle_is_rejected_before_anything_runs() {
    let ran = Arc::new(AtomicUsize::new(0));
    let mut g = Graph::new();
    let r = ran.clone();
    let a = g.task("a", &[], move || {
        r.fetch_add(1, Ordering::SeqCst);
    });
    let r = ran.clone();
    let b = g.task("b", &[a], move || {
        r.fetch_add(1, Ordering::SeqCst);
    });
    let r = ran.clone();
    let c = g.task("c", &[b], move || {
        r.fetch_add(1, Ordering::SeqCst);
    });
    // Close the loop a → b → c → a: running this would deadlock a
    // naive executor; ours must refuse up front.
    g.add_dep(a, c);
    let err = run(g, 2).expect_err("cycle must be detected");
    assert_eq!(err.stuck.len(), 3, "all three nodes are stuck: {err}");
    assert_eq!(ran.load(Ordering::SeqCst), 0, "no task may have run");
}

#[test]
fn diamond_order_respected() {
    // a → {b, c} → d, checked via a sequence log.
    let log = Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut g = Graph::new();
    let l = log.clone();
    let a = g.task("a", &[], move || l.lock().unwrap().push('a'));
    let l = log.clone();
    let b = g.task("b", &[a], move || l.lock().unwrap().push('b'));
    let l = log.clone();
    let c = g.task("c", &[a], move || l.lock().unwrap().push('c'));
    let l = log.clone();
    g.task("d", &[b, c], move || l.lock().unwrap().push('d'));
    run(g, 4).unwrap();
    let seq = log.lock().unwrap().clone();
    assert_eq!(seq.len(), 4);
    assert_eq!(seq[0], 'a');
    assert_eq!(seq[3], 'd');
}

#[test]
fn comm_task_gates_dependents_and_overlaps_compute() {
    // A comm task that needs many polls to finish; independent compute
    // tasks must run *during* it (overlap > 0), and the dependent task
    // must only see the slot filled after Ready.
    let slot = Slot::new();
    let polls = AtomicUsize::new(0);
    let mut g = Graph::new();
    let s = &slot;
    let p = &polls;
    let comm = g.comm("Comm", &[], move || {
        let n = p.fetch_add(1, Ordering::SeqCst);
        if n >= 400 {
            if n == 400 {
                s.put(vec![1u32, 2, 3]);
            }
            CommPoll::Ready
        } else {
            std::thread::yield_now();
            CommPoll::Pending
        }
    });
    // Independent busywork eligible to overlap with the comm window.
    for i in 0..16 {
        g.task("Ulist", &[], move || {
            let mut acc = 0.0f64;
            for j in 0..200_000 {
                acc += ((i * j) as f64).sqrt();
            }
            assert!(acc >= 0.0);
        });
    }
    let got = Slot::new();
    let gref = &got;
    g.task("Dcheck", &[comm], move || {
        gref.put(s.with(|v| v.iter().sum::<u32>()));
    });
    let rep = run(g, 2).unwrap();
    assert_eq!(got.take(), 6, "dependent saw the comm payload");
    assert!(
        polls.load(Ordering::SeqCst) > 400,
        "comm task was polled repeatedly"
    );
    assert!(
        rep.overlap_secs > 0.0,
        "compute overlapped the comm window: {rep:?}"
    );
    assert!(rep.phase_secs["Comm"] > 0.0);
    assert!(rep.phase_secs["Ulist"] > 0.0);
}

#[test]
fn empty_graph_runs() {
    let rep = run(Graph::new(), 3).unwrap();
    assert_eq!(rep.tasks, 0);
    assert_eq!(rep.overlap_secs, 0.0);
}

#[test]
fn driver_alone_executes_everything() {
    // workers = 0: the driver thread runs all compute itself.
    let done = AtomicUsize::new(0);
    let mut g = Graph::new();
    let d = &done;
    let a = g.task("x", &[], move || {
        d.fetch_add(1, Ordering::SeqCst);
    });
    let d = &done;
    g.task("y", &[a], move || {
        d.fetch_add(10, Ordering::SeqCst);
    });
    run(g, 0).unwrap();
    assert_eq!(done.load(Ordering::SeqCst), 11);
}
