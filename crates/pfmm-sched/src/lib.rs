//! A dependency-graph task runtime for the FMM evaluation pipeline.
//!
//! The paper's distributed evaluation (§3, Algorithm 2) is a sequence of
//! phases — S2U, the upward pass, the hypercube reduce-and-scatter, the
//! U/V/W/X interaction lists, the downward pass — whose *bulk-synchronous*
//! rendering leaves the network idle while ranks compute and the cores
//! idle while ranks communicate. The paper hides this latency by
//! overlapping the U-list (direct) interactions, which need no remote
//! multipole data, with the reduce-and-scatter that delivers everyone
//! else's. This crate provides the machinery for that overlap without
//! hard-coding the pipeline:
//!
//! * [`Graph`]: task nodes with explicit data dependencies. A node is
//!   either a **compute task** (a `Send` closure, eligible to run on any
//!   worker) or a **comm task** (a *poll* closure driving non-blocking
//!   [`pfmm-mpisim`] requests; `!Send`, pinned to the thread that owns
//!   the `Comm` handle, mirroring `MPI_THREAD_FUNNELED`).
//! * [`run`]: a ready-queue + work-stealing executor. Worker threads
//!   execute compute tasks; the calling (driver) thread polls in-flight
//!   comm tasks and helps with compute while no communication is active.
//! * Cycle detection (Kahn's algorithm) before anything executes — a
//!   mis-built graph fails fast with the offending nodes instead of
//!   deadlocking.
//! * Per-task wall-clock timing rolled up by phase name, plus an
//!   *overlap* metric: the compute seconds that executed while a comm
//!   task was in flight — exactly the time a barrier pipeline would have
//!   spent twice.
//!
//! Determinism: the scheduler promises that a task runs only after all
//! its dependencies completed, and nothing else. Bitwise-reproducible
//! results across worker counts are therefore a property of the *graph*:
//! if every floating-point accumulation order is fixed by the dependency
//! edges (as the FMM port in `pfmm-core` arranges), 1, 2 or 8 workers
//! produce identical bits. [`GraphBuf`] supports the common pattern of
//! many tasks writing disjoint slices of one output vector.

mod buf;
mod exec;
mod graph;

pub use buf::{GraphBuf, Slot};
pub use exec::{run, run_with, RunReport, TraceCtx, TID_COMM0};
pub use graph::{CommPoll, CycleError, Graph, TaskId};
