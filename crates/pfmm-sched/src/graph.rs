//! Task-graph construction and validation.

use std::fmt;

/// Handle to a task node returned by [`Graph::task`] / [`Graph::comm`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub(crate) usize);

/// Result of one poll of a communication task.
///
/// A comm task's closure is invoked repeatedly on the driver thread; it
/// should advance its non-blocking requests (`isend`/`irecv` tests) and
/// report whether the whole exchange has completed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommPoll {
    /// Requests still in flight — poll again later.
    Pending,
    /// The exchange finished; dependent tasks may run.
    Ready,
}

/// The work attached to a node.
pub(crate) enum Work<'env> {
    /// Runs once, on any worker thread.
    Compute(Box<dyn FnOnce() + Send + 'env>),
    /// Polled on the driver thread until it returns [`CommPoll::Ready`].
    /// Deliberately not `Send`: it closes over the rank's `Comm` handle.
    Comm(Box<dyn FnMut() -> CommPoll + 'env>),
}

pub(crate) struct Node<'env> {
    pub phase: &'static str,
    pub work: Work<'env>,
    pub deps: Vec<usize>,
}

/// A directed acyclic graph of compute and communication tasks.
///
/// Dependencies are *data* dependencies: an edge `a → b` means `b` may
/// read what `a` wrote. The executor guarantees nothing beyond edges, so
/// two tasks that both mutate the same location must be ordered by a
/// dependency chain (or write disjoint slices via [`crate::GraphBuf`]).
#[derive(Default)]
pub struct Graph<'env> {
    pub(crate) nodes: Vec<Node<'env>>,
}

impl<'env> Graph<'env> {
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Add a compute task attributed to `phase`, depending on `deps`.
    pub fn task(
        &mut self,
        phase: &'static str,
        deps: &[TaskId],
        f: impl FnOnce() + Send + 'env,
    ) -> TaskId {
        self.push(phase, deps, Work::Compute(Box::new(f)))
    }

    /// Add a communication task: `poll` is called on the driver thread
    /// until it returns [`CommPoll::Ready`].
    pub fn comm(
        &mut self,
        phase: &'static str,
        deps: &[TaskId],
        poll: impl FnMut() -> CommPoll + 'env,
    ) -> TaskId {
        self.push(phase, deps, Work::Comm(Box::new(poll)))
    }

    /// Add a dependency edge `dep → task` after both nodes exist.
    ///
    /// Edges added this way can create cycles; [`crate::run`] rejects a
    /// cyclic graph with [`CycleError`] before executing anything.
    pub fn add_dep(&mut self, task: TaskId, dep: TaskId) {
        assert!(task.0 < self.nodes.len() && dep.0 < self.nodes.len());
        self.nodes[task.0].deps.push(dep.0);
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, phase: &'static str, deps: &[TaskId], work: Work<'env>) -> TaskId {
        let id = self.nodes.len();
        for d in deps {
            assert!(d.0 < id, "dependency on a not-yet-added task");
        }
        self.nodes.push(Node {
            phase,
            work,
            deps: deps.iter().map(|d| d.0).collect(),
        });
        TaskId(id)
    }

    /// Kahn's algorithm: `Ok(indegrees)` if acyclic, else the nodes on
    /// (or downstream of) a cycle.
    pub(crate) fn validate(&self) -> Result<Vec<usize>, CycleError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for &d in &node.deps {
                indeg[i] += 1;
                children[d].push(i);
            }
        }
        let mut remaining = indeg.clone();
        let mut stack: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(t) = stack.pop() {
            seen += 1;
            for &c in &children[t] {
                remaining[c] -= 1;
                if remaining[c] == 0 {
                    stack.push(c);
                }
            }
        }
        if seen == n {
            Ok(indeg)
        } else {
            let stuck = (0..n)
                .filter(|&i| remaining[i] > 0)
                .map(|i| (TaskId(i), self.nodes[i].phase))
                .collect();
            Err(CycleError { stuck })
        }
    }
}

/// The graph contains a dependency cycle; running it would deadlock.
#[derive(Debug)]
pub struct CycleError {
    /// Nodes that can never become ready (the cycle and everything
    /// blocked behind it), with their phase labels.
    pub stuck: Vec<(TaskId, &'static str)>,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task graph has a cycle; {} node(s) unreachable:",
            self.stuck.len()
        )?;
        for (id, phase) in &self.stuck {
            write!(f, " #{}[{}]", id.0, phase)?;
        }
        Ok(())
    }
}

impl std::error::Error for CycleError {}
