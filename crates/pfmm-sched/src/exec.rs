//! Ready-queue + work-stealing executor with a driver-thread comm loop.
//!
//! Threading model (mirrors `MPI_THREAD_FUNNELED`): the calling thread —
//! the *driver*, which owns the rank's `Comm` handle — polls in-flight
//! communication tasks and helps with compute while none are active;
//! `workers` extra threads execute compute tasks, preferring their own
//! deque (LIFO, for locality), then stealing from siblings and the
//! shared injector (FIFO).

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use pfmm_trace::{tid_worker, Event, EventKind, Str, TraceLevel, Tracer, TID_MAIN};

use crate::graph::{CommPoll, CycleError, Graph, Work};

/// First trace lane used for comm in-flight windows. Windows may overlap
/// in time (several exchanges can be in flight at once), so each gets a
/// conflict-free lane below [`pfmm_trace::TID_GPU`] to keep Chrome spans
/// strictly nested per lane.
pub const TID_COMM0: u32 = 900;

/// Where the executor's trace events go (see [`run_with`]).
#[derive(Clone, Copy)]
pub struct TraceCtx<'a> {
    /// Destination tracer; the run records nothing unless it is enabled
    /// at [`TraceLevel::Phase`] or above.
    pub tracer: &'a Tracer,
    /// The simulated rank this graph executes on (the trace pid).
    pub rank: u32,
}

/// What the executor measured while running a graph.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Wall-clock seconds summed per phase label. Compute phases sum the
    /// closure run times across all workers (i.e. *core*-seconds); comm
    /// phases count the in-flight window from activation to completion.
    pub phase_secs: BTreeMap<&'static str, f64>,
    /// Compute seconds that executed while at least one comm task was in
    /// flight — latency a bulk-synchronous schedule would not have hidden.
    pub overlap_secs: f64,
    /// End-to-end wall-clock of the whole graph.
    pub wall_secs: f64,
    /// Longest dependency chain through the graph at *measured* task
    /// durations — the wall-clock floor no amount of workers beats.
    pub critical_path_secs: f64,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Compute worker threads used (the driver thread is extra).
    pub workers: usize,
    /// Tasks taken from *another* worker's deque (injector pops and
    /// own-deque pops are not steals).
    pub steals: u64,
}

struct Interval {
    phase: &'static str,
    comm: bool,
    /// Graph node index, for span/flow attribution.
    task: usize,
    /// Trace lane the task ran on (driver or worker); comm windows are
    /// re-laned at emission time.
    tid: u32,
    t0: f64,
    t1: f64,
}

type ComputeBox<'env> = Box<dyn FnOnce() + Send + 'env>;
type CommBox<'env> = Box<dyn FnMut() -> CommPoll + 'env>;

struct Shared<'env> {
    compute: Vec<Mutex<Option<ComputeBox<'env>>>>,
    children: Vec<Vec<usize>>,
    indeg: Vec<AtomicUsize>,
    phases: Vec<&'static str>,
    is_comm: Vec<bool>,
    /// Global FIFO of ready compute tasks.
    injector: Mutex<VecDeque<usize>>,
    /// Per-worker deques (owner pops the back, thieves steal the front).
    locals: Vec<Mutex<VecDeque<usize>>>,
    /// Comm tasks whose dependencies completed, awaiting driver adoption.
    comm_ready: Mutex<Vec<usize>>,
    remaining: AtomicUsize,
    intervals: Mutex<Vec<Interval>>,
    steals: AtomicU64,
    epoch: Instant,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<'env> Shared<'env> {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Mark `t` complete: decrement children, enqueue those that became
    /// ready. Compute children go to `home` (the finisher's own deque,
    /// or the injector when the driver finished the task).
    fn finish(&self, t: usize, home: Option<usize>) {
        for &c in &self.children[t] {
            if self.indeg[c].fetch_sub(1, Ordering::AcqRel) == 1 {
                if self.is_comm[c] {
                    lock(&self.comm_ready).push(c);
                } else if let Some(w) = home {
                    lock(&self.locals[w]).push_back(c);
                } else {
                    lock(&self.injector).push_back(c);
                }
            }
        }
        self.remaining.fetch_sub(1, Ordering::AcqRel);
    }

    fn grab(&self, me: Option<usize>) -> Option<usize> {
        if let Some(w) = me {
            if let Some(t) = lock(&self.locals[w]).pop_back() {
                return Some(t);
            }
        }
        if let Some(t) = lock(&self.injector).pop_front() {
            return Some(t);
        }
        for (i, q) in self.locals.iter().enumerate() {
            if Some(i) == me {
                continue;
            }
            if let Some(t) = lock(q).pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    fn exec_compute(&self, t: usize, me: Option<usize>) {
        let f = lock(&self.compute[t])
            .take()
            .expect("compute task executed twice");
        let t0 = self.now();
        f();
        let t1 = self.now();
        lock(&self.intervals).push(Interval {
            phase: self.phases[t],
            comm: false,
            task: t,
            tid: me.map(tid_worker).unwrap_or(TID_MAIN),
            t0,
            t1,
        });
        self.finish(t, me);
    }
}

fn worker_loop(shared: &Shared<'_>, w: usize) {
    let mut idle = 0u32;
    while shared.remaining.load(Ordering::Acquire) > 0 {
        match shared.grab(Some(w)) {
            Some(t) => {
                idle = 0;
                shared.exec_compute(t, Some(w));
            }
            None => {
                idle += 1;
                if idle < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

fn driver_loop<'env>(shared: &Shared<'env>, comm_works: &mut [Option<CommBox<'env>>]) {
    // (task, activation time) of comm tasks currently being polled.
    let mut active: Vec<(usize, f64)> = Vec::new();
    while shared.remaining.load(Ordering::Acquire) > 0 {
        {
            let mut ready = lock(&shared.comm_ready);
            for t in ready.drain(..) {
                active.push((t, shared.now()));
            }
        }
        if !active.is_empty() {
            // Communication in flight: poll every active exchange, let
            // the workers supply the overlapping compute.
            let mut i = 0;
            while i < active.len() {
                let (t, t0) = active[i];
                let poll = comm_works[t]
                    .as_mut()
                    .expect("comm task polled after completion");
                if poll() == CommPoll::Ready {
                    let t1 = shared.now();
                    lock(&shared.intervals).push(Interval {
                        phase: shared.phases[t],
                        comm: true,
                        task: t,
                        tid: TID_MAIN,
                        t0,
                        t1,
                    });
                    comm_works[t] = None;
                    shared.finish(t, None);
                    active.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            std::thread::yield_now();
        } else if let Some(t) = shared.grab(None) {
            shared.exec_compute(t, None);
        } else {
            std::thread::yield_now();
        }
    }
}

/// Execute `graph` with `workers` compute threads plus the calling
/// (driver) thread. Returns after every task has completed.
///
/// Fails with [`CycleError`] — before running anything — if the graph
/// has a dependency cycle. Panics in task closures propagate once the
/// scope joins, as with [`std::thread::scope`].
pub fn run(graph: Graph<'_>, workers: usize) -> Result<RunReport, CycleError> {
    run_with(graph, workers, None)
}

/// [`run`], optionally emitting trace events describing the execution.
///
/// Tracing costs the run itself nothing: events are synthesized *after*
/// the graph completes from the interval records the executor keeps
/// anyway, so a traced run's scheduling (and its report's numbers) are
/// identical to an untraced one. At [`TraceLevel::Phase`] only the comm
/// in-flight windows are emitted; [`TraceLevel::Task`] adds one span per
/// task on its actual execution lane plus a flow arrow per dependency
/// edge (`cat:"sched"`, args `src`/`dst`).
pub fn run_with(
    graph: Graph<'_>,
    workers: usize,
    trace: Option<TraceCtx<'_>>,
) -> Result<RunReport, CycleError> {
    let indeg = graph.validate()?;
    let n = graph.nodes.len();

    let mut compute = Vec::with_capacity(n);
    let mut comm_works: Vec<Option<CommBox<'_>>> = Vec::with_capacity(n);
    let mut is_comm = vec![false; n];
    let mut phases = Vec::with_capacity(n);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut deps: Vec<Vec<usize>> = Vec::with_capacity(n);
    for (i, node) in graph.nodes.into_iter().enumerate() {
        phases.push(node.phase);
        for &d in &node.deps {
            children[d].push(i);
        }
        deps.push(node.deps);
        match node.work {
            Work::Compute(f) => {
                compute.push(Mutex::new(Some(f)));
                comm_works.push(None);
            }
            Work::Comm(p) => {
                compute.push(Mutex::new(None));
                comm_works.push(Some(p));
                is_comm[i] = true;
            }
        }
    }

    let shared = Shared {
        compute,
        children,
        indeg: indeg.iter().copied().map(AtomicUsize::new).collect(),
        phases,
        is_comm: is_comm.clone(),
        injector: Mutex::new(VecDeque::new()),
        locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        comm_ready: Mutex::new(Vec::new()),
        remaining: AtomicUsize::new(n),
        intervals: Mutex::new(Vec::with_capacity(n)),
        steals: AtomicU64::new(0),
        epoch: Instant::now(),
    };
    // Tracer-clock microseconds at this run's epoch, so interval times
    // (seconds since epoch) can be replayed on the shared trace clock.
    let trace_base_us = trace.as_ref().map(|tc| tc.tracer.now_us()).unwrap_or(0.0);

    // Seed the queues with the sources.
    for (i, &d) in indeg.iter().enumerate() {
        if d == 0 {
            if is_comm[i] {
                lock(&shared.comm_ready).push(i);
            } else {
                lock(&shared.injector).push_back(i);
            }
        }
    }

    std::thread::scope(|s| {
        let shared = &shared;
        for w in 0..workers {
            s.spawn(move || worker_loop(shared, w));
        }
        driver_loop(shared, &mut comm_works);
    });

    let wall_secs = shared.now();
    let intervals = shared
        .intervals
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());

    let mut phase_secs: BTreeMap<&'static str, f64> = BTreeMap::new();
    for iv in &intervals {
        *phase_secs.entry(iv.phase).or_default() += iv.t1 - iv.t0;
    }

    // Overlap: compute time inside the union of comm in-flight windows.
    let mut comm_ivs: Vec<(f64, f64)> = intervals
        .iter()
        .filter(|i| i.comm)
        .map(|i| (i.t0, i.t1))
        .collect();
    comm_ivs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut merged: Vec<(f64, f64)> = Vec::new();
    for (a, b) in comm_ivs {
        match merged.last_mut() {
            Some(last) if last.1 >= a => last.1 = last.1.max(b),
            _ => merged.push((a, b)),
        }
    }
    let mut overlap_secs = 0.0;
    for iv in intervals.iter().filter(|i| !i.comm) {
        for &(a, b) in &merged {
            if a > iv.t1 {
                break;
            }
            let lo = a.max(iv.t0);
            let hi = b.min(iv.t1);
            if hi > lo {
                overlap_secs += hi - lo;
            }
        }
    }

    // Critical path at measured durations: longest dependency chain,
    // walked in the same topological order validate() proved exists.
    let mut dur = vec![0.0f64; n];
    for iv in &intervals {
        dur[iv.task] += iv.t1 - iv.t0;
    }
    let critical_path_secs = {
        let mut remaining = indeg.clone();
        let mut stack: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        let mut finish = vec![0.0f64; n];
        let mut best = 0.0f64;
        while let Some(t) = stack.pop() {
            finish[t] += dur[t];
            best = best.max(finish[t]);
            for &c in &shared.children[t] {
                finish[c] = finish[c].max(finish[t]);
                remaining[c] -= 1;
                if remaining[c] == 0 {
                    stack.push(c);
                }
            }
        }
        best
    };

    if let Some(tc) = &trace {
        emit_trace(tc, trace_base_us, &intervals, &deps);
    }

    let steals = shared.steals.load(Ordering::Relaxed);
    // Mirror the run into the always-on telemetry registry (cold path:
    // once per graph execution, not per task).
    let reg = pfmm_metrics::global();
    if reg.enabled() {
        reg.counter("pfmm_sched_runs_total", &[]).inc();
        reg.counter("pfmm_sched_tasks_total", &[]).add(n as u64);
        reg.counter("pfmm_sched_steals_total", &[]).add(steals);
        reg.counter("pfmm_sched_overlap_us_total", &[])
            .add((overlap_secs * 1e6) as u64);
        reg.counter("pfmm_sched_wall_us_total", &[])
            .add((wall_secs * 1e6) as u64);
    }

    Ok(RunReport {
        phase_secs,
        overlap_secs,
        wall_secs,
        critical_path_secs,
        tasks: n,
        workers,
        steals,
    })
}

/// Replay the executor's interval records as trace events (see
/// [`run_with`] for the level semantics).
fn emit_trace(tc: &TraceCtx<'_>, base_us: f64, intervals: &[Interval], deps: &[Vec<usize>]) {
    if !tc.tracer.enabled(TraceLevel::Phase) {
        return;
    }
    let task_level = tc.tracer.enabled(TraceLevel::Task);
    let rank = tc.rank;
    let mut evs: Vec<Event> = Vec::new();
    let mk = |kind,
              name: &'static str,
              cat: &'static str,
              tid: u32,
              ts_us: f64,
              flow: u64,
              args: Vec<(Str, u64)>| Event {
        kind,
        name: name.into(),
        cat: cat.into(),
        rank,
        tid,
        ts_us,
        flow,
        args,
    };

    // Comm windows overlap in time; greedily pack them onto
    // conflict-free lanes starting at TID_COMM0.
    let n = deps.len();
    let mut comm_lane = vec![0u32; n];
    {
        let mut comm_ivs: Vec<&Interval> = intervals.iter().filter(|iv| iv.comm).collect();
        comm_ivs.sort_by(|a, b| a.t0.total_cmp(&b.t0));
        let mut lane_busy_until: Vec<f64> = Vec::new();
        for iv in comm_ivs {
            let lane = match lane_busy_until.iter().position(|&e| e <= iv.t0) {
                Some(l) => l,
                None => {
                    lane_busy_until.push(f64::NEG_INFINITY);
                    lane_busy_until.len() - 1
                }
            };
            lane_busy_until[lane] = iv.t1;
            comm_lane[iv.task] = TID_COMM0 + lane as u32;
        }
    }

    // Span begin/end positions per task, for flow-arrow anchoring.
    let mut t0s = vec![0.0f64; n];
    let mut t1s = vec![0.0f64; n];
    let mut tids = vec![TID_MAIN; n];
    for iv in intervals {
        let tid = if iv.comm { comm_lane[iv.task] } else { iv.tid };
        t0s[iv.task] = base_us + iv.t0 * 1e6;
        t1s[iv.task] = base_us + iv.t1 * 1e6;
        tids[iv.task] = tid;
        if iv.comm || task_level {
            let cat = if iv.comm { "comm" } else { "task" };
            let args = vec![(Str::from("task"), iv.task as u64)];
            evs.push(mk(
                EventKind::Begin,
                iv.phase,
                cat,
                tid,
                t0s[iv.task],
                0,
                args,
            ));
            evs.push(mk(EventKind::End, "", "", tid, t1s[iv.task], 0, Vec::new()));
        }
    }

    if task_level {
        let edge_count: usize = deps.iter().map(Vec::len).sum();
        let base = tc.tracer.alloc_flows(edge_count as u64);
        let mut next = base;
        for (child, ds) in deps.iter().enumerate() {
            for &d in ds {
                let args = vec![
                    (Str::from("src"), d as u64),
                    (Str::from("dst"), child as u64),
                ];
                evs.push(mk(
                    EventKind::FlowStart,
                    "dep",
                    "sched",
                    tids[d],
                    t1s[d],
                    next,
                    args,
                ));
                evs.push(mk(
                    EventKind::FlowEnd,
                    "dep",
                    "sched",
                    tids[child],
                    t0s[child],
                    next,
                    Vec::new(),
                ));
                next += 1;
            }
        }
    }

    tc.tracer.record_many(evs);
}
