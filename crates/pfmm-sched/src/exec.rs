//! Ready-queue + work-stealing executor with a driver-thread comm loop.
//!
//! Threading model (mirrors `MPI_THREAD_FUNNELED`): the calling thread —
//! the *driver*, which owns the rank's `Comm` handle — polls in-flight
//! communication tasks and helps with compute while none are active;
//! `workers` extra threads execute compute tasks, preferring their own
//! deque (LIFO, for locality), then stealing from siblings and the
//! shared injector (FIFO).

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use crate::graph::{CommPoll, CycleError, Graph, Work};

/// What the executor measured while running a graph.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Wall-clock seconds summed per phase label. Compute phases sum the
    /// closure run times across all workers (i.e. *core*-seconds); comm
    /// phases count the in-flight window from activation to completion.
    pub phase_secs: BTreeMap<&'static str, f64>,
    /// Compute seconds that executed while at least one comm task was in
    /// flight — latency a bulk-synchronous schedule would not have hidden.
    pub overlap_secs: f64,
    /// End-to-end wall-clock of the whole graph.
    pub wall_secs: f64,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Compute worker threads used (the driver thread is extra).
    pub workers: usize,
}

struct Interval {
    phase: &'static str,
    comm: bool,
    t0: f64,
    t1: f64,
}

type ComputeBox<'env> = Box<dyn FnOnce() + Send + 'env>;
type CommBox<'env> = Box<dyn FnMut() -> CommPoll + 'env>;

struct Shared<'env> {
    compute: Vec<Mutex<Option<ComputeBox<'env>>>>,
    children: Vec<Vec<usize>>,
    indeg: Vec<AtomicUsize>,
    phases: Vec<&'static str>,
    is_comm: Vec<bool>,
    /// Global FIFO of ready compute tasks.
    injector: Mutex<VecDeque<usize>>,
    /// Per-worker deques (owner pops the back, thieves steal the front).
    locals: Vec<Mutex<VecDeque<usize>>>,
    /// Comm tasks whose dependencies completed, awaiting driver adoption.
    comm_ready: Mutex<Vec<usize>>,
    remaining: AtomicUsize,
    intervals: Mutex<Vec<Interval>>,
    epoch: Instant,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<'env> Shared<'env> {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Mark `t` complete: decrement children, enqueue those that became
    /// ready. Compute children go to `home` (the finisher's own deque,
    /// or the injector when the driver finished the task).
    fn finish(&self, t: usize, home: Option<usize>) {
        for &c in &self.children[t] {
            if self.indeg[c].fetch_sub(1, Ordering::AcqRel) == 1 {
                if self.is_comm[c] {
                    lock(&self.comm_ready).push(c);
                } else if let Some(w) = home {
                    lock(&self.locals[w]).push_back(c);
                } else {
                    lock(&self.injector).push_back(c);
                }
            }
        }
        self.remaining.fetch_sub(1, Ordering::AcqRel);
    }

    fn grab(&self, me: Option<usize>) -> Option<usize> {
        if let Some(w) = me {
            if let Some(t) = lock(&self.locals[w]).pop_back() {
                return Some(t);
            }
        }
        if let Some(t) = lock(&self.injector).pop_front() {
            return Some(t);
        }
        for (i, q) in self.locals.iter().enumerate() {
            if Some(i) == me {
                continue;
            }
            if let Some(t) = lock(q).pop_front() {
                return Some(t);
            }
        }
        None
    }

    fn exec_compute(&self, t: usize, me: Option<usize>) {
        let f = lock(&self.compute[t])
            .take()
            .expect("compute task executed twice");
        let t0 = self.now();
        f();
        let t1 = self.now();
        lock(&self.intervals).push(Interval {
            phase: self.phases[t],
            comm: false,
            t0,
            t1,
        });
        self.finish(t, me);
    }
}

fn worker_loop(shared: &Shared<'_>, w: usize) {
    let mut idle = 0u32;
    while shared.remaining.load(Ordering::Acquire) > 0 {
        match shared.grab(Some(w)) {
            Some(t) => {
                idle = 0;
                shared.exec_compute(t, Some(w));
            }
            None => {
                idle += 1;
                if idle < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

fn driver_loop<'env>(shared: &Shared<'env>, comm_works: &mut [Option<CommBox<'env>>]) {
    // (task, activation time) of comm tasks currently being polled.
    let mut active: Vec<(usize, f64)> = Vec::new();
    while shared.remaining.load(Ordering::Acquire) > 0 {
        {
            let mut ready = lock(&shared.comm_ready);
            for t in ready.drain(..) {
                active.push((t, shared.now()));
            }
        }
        if !active.is_empty() {
            // Communication in flight: poll every active exchange, let
            // the workers supply the overlapping compute.
            let mut i = 0;
            while i < active.len() {
                let (t, t0) = active[i];
                let poll = comm_works[t]
                    .as_mut()
                    .expect("comm task polled after completion");
                if poll() == CommPoll::Ready {
                    let t1 = shared.now();
                    lock(&shared.intervals).push(Interval {
                        phase: shared.phases[t],
                        comm: true,
                        t0,
                        t1,
                    });
                    comm_works[t] = None;
                    shared.finish(t, None);
                    active.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            std::thread::yield_now();
        } else if let Some(t) = shared.grab(None) {
            shared.exec_compute(t, None);
        } else {
            std::thread::yield_now();
        }
    }
}

/// Execute `graph` with `workers` compute threads plus the calling
/// (driver) thread. Returns after every task has completed.
///
/// Fails with [`CycleError`] — before running anything — if the graph
/// has a dependency cycle. Panics in task closures propagate once the
/// scope joins, as with [`std::thread::scope`].
pub fn run(graph: Graph<'_>, workers: usize) -> Result<RunReport, CycleError> {
    let indeg = graph.validate()?;
    let n = graph.nodes.len();

    let mut compute = Vec::with_capacity(n);
    let mut comm_works: Vec<Option<CommBox<'_>>> = Vec::with_capacity(n);
    let mut is_comm = vec![false; n];
    let mut phases = Vec::with_capacity(n);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in graph.nodes.into_iter().enumerate() {
        phases.push(node.phase);
        for &d in &node.deps {
            children[d].push(i);
        }
        match node.work {
            Work::Compute(f) => {
                compute.push(Mutex::new(Some(f)));
                comm_works.push(None);
            }
            Work::Comm(p) => {
                compute.push(Mutex::new(None));
                comm_works.push(Some(p));
                is_comm[i] = true;
            }
        }
    }

    let shared = Shared {
        compute,
        children,
        indeg: indeg.iter().copied().map(AtomicUsize::new).collect(),
        phases,
        is_comm: is_comm.clone(),
        injector: Mutex::new(VecDeque::new()),
        locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        comm_ready: Mutex::new(Vec::new()),
        remaining: AtomicUsize::new(n),
        intervals: Mutex::new(Vec::with_capacity(n)),
        epoch: Instant::now(),
    };

    // Seed the queues with the sources.
    for (i, &d) in indeg.iter().enumerate() {
        if d == 0 {
            if is_comm[i] {
                lock(&shared.comm_ready).push(i);
            } else {
                lock(&shared.injector).push_back(i);
            }
        }
    }

    std::thread::scope(|s| {
        let shared = &shared;
        for w in 0..workers {
            s.spawn(move || worker_loop(shared, w));
        }
        driver_loop(shared, &mut comm_works);
    });

    let wall_secs = shared.now();
    let intervals = shared
        .intervals
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());

    let mut phase_secs: BTreeMap<&'static str, f64> = BTreeMap::new();
    for iv in &intervals {
        *phase_secs.entry(iv.phase).or_default() += iv.t1 - iv.t0;
    }

    // Overlap: compute time inside the union of comm in-flight windows.
    let mut comm_ivs: Vec<(f64, f64)> = intervals
        .iter()
        .filter(|i| i.comm)
        .map(|i| (i.t0, i.t1))
        .collect();
    comm_ivs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut merged: Vec<(f64, f64)> = Vec::new();
    for (a, b) in comm_ivs {
        match merged.last_mut() {
            Some(last) if last.1 >= a => last.1 = last.1.max(b),
            _ => merged.push((a, b)),
        }
    }
    let mut overlap_secs = 0.0;
    for iv in intervals.iter().filter(|i| !i.comm) {
        for &(a, b) in &merged {
            if a > iv.t1 {
                break;
            }
            let lo = a.max(iv.t0);
            let hi = b.min(iv.t1);
            if hi > lo {
                overlap_secs += hi - lo;
            }
        }
    }

    Ok(RunReport {
        phase_secs,
        overlap_secs,
        wall_secs,
        tasks: n,
        workers,
    })
}
