//! Shared buffers whose safety derives from the task graph.

use std::cell::UnsafeCell;
use std::sync::Mutex;

/// A vector that many tasks mutate concurrently through *disjoint*
/// slices.
///
/// The FMM pipeline's outputs (potentials, check values, densities) are
/// long vectors chunked by octant range; each chunk task writes only its
/// own range, and chunk boundaries never move while the graph runs. The
/// graph's dependency edges — not a lock — are what keep writers apart,
/// so the accessor is `unsafe`: the caller asserts that no two tasks
/// that can run concurrently take overlapping ranges.
pub struct GraphBuf<T> {
    data: UnsafeCell<Vec<T>>,
}

// Safety: disjoint `&mut` slices handed to different threads are exactly
// what `split_at_mut` would produce; the graph supplies the disjointness.
unsafe impl<T: Send> Sync for GraphBuf<T> {}

impl<T> GraphBuf<T> {
    pub fn new(v: Vec<T>) -> Self {
        GraphBuf {
            data: UnsafeCell::new(v),
        }
    }

    pub fn len(&self) -> usize {
        // Safety: the length is never changed while the buffer is shared.
        unsafe { (&*self.data.get()).len() }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutable view of `start..start + len`.
    ///
    /// # Safety
    /// Tasks holding overlapping ranges must be ordered by dependency
    /// edges, and no task may call [`GraphBuf::as_slice`] while another
    /// concurrently-runnable task writes any element.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        let v = &mut *self.data.get();
        &mut v[start..start + len]
    }

    /// Read-only view of the whole buffer.
    ///
    /// # Safety
    /// No concurrently-runnable task may hold a mutable slice.
    pub unsafe fn as_slice(&self) -> &[T] {
        let v = &*self.data.get();
        &v[..]
    }

    /// Recover the vector once the graph has finished.
    pub fn into_inner(self) -> Vec<T> {
        self.data.into_inner()
    }
}

/// A single-assignment cell for passing an owned value along a graph
/// edge (e.g. the reduce-and-scatter comm task deposits the received
/// ghost densities; the V-list tasks take a shared reference later).
///
/// Unlike [`GraphBuf`] this is fully safe: a `Mutex` guards the slot,
/// and the expected discipline (producer `put`s once, consumers `take`
/// or `with` after a dependency edge) is asserted at runtime.
pub struct Slot<T> {
    inner: Mutex<Option<T>>,
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slot<T> {
    pub fn new() -> Self {
        Slot {
            inner: Mutex::new(None),
        }
    }

    /// Deposit the value. Panics if the slot is already full.
    pub fn put(&self, v: T) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        assert!(g.is_none(), "Slot::put called twice");
        *g = Some(v);
    }

    /// Remove and return the value. Panics if empty — which means a
    /// missing dependency edge, not a timing accident.
    pub fn take(&self) -> T {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("Slot::take before put — missing graph dependency?")
    }

    /// Borrow the value in place (for multiple consumer tasks).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(g.as_ref()
            .expect("Slot::with before put — missing graph dependency?"))
    }
}
