//! Property-based tests of the dense-algebra substrate.

use proptest::prelude::*;

use pfmm_linalg::{gemm_acc_scaled, pinv, Matrix, Svd};

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-5.0f64..5.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn close(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// SVD reconstructs the input for arbitrary shapes.
    #[test]
    fn svd_reconstructs(m in arb_matrix(10)) {
        let svd = Svd::new(&m);
        let scale = m.max_abs().max(1.0);
        prop_assert!(close(&svd.reconstruct(), &m, 1e-9 * scale));
        // Singular values are nonnegative and sorted.
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1] && w[1] >= 0.0);
        }
    }

    /// The left singular vectors are orthonormal columns (UᵀU = I) up to
    /// the numerical rank.
    #[test]
    fn svd_u_orthonormal(m in arb_matrix(8)) {
        let svd = Svd::new(&m);
        let utu = svd.u.transpose().matmul(&svd.u);
        let smax = svd.s.first().copied().unwrap_or(0.0);
        for i in 0..utu.rows() {
            // Columns with negligible singular values may be zero.
            if svd.s[i] < 1e-10 * smax.max(1.0) {
                continue;
            }
            for j in 0..utu.cols() {
                if svd.s[j] < 1e-10 * smax.max(1.0) {
                    continue;
                }
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((utu[(i, j)] - want).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    /// Moore–Penrose identities: A P A = A and P A P = P.
    #[test]
    fn pinv_moore_penrose(m in arb_matrix(8)) {
        let p = pinv(&m, 1e-11);
        let apa = m.matmul(&p).matmul(&m);
        let scale = m.max_abs().max(1.0);
        prop_assert!(close(&apa, &m, 1e-7 * scale));
        let pap = p.matmul(&m).matmul(&p);
        let pscale = p.max_abs().max(1.0);
        prop_assert!(close(&pap, &p, 1e-7 * pscale));
    }

    /// Matvec distributes over addition and scaling.
    #[test]
    fn matvec_linear(m in arb_matrix(9), s in -2.0f64..2.0) {
        let n = m.cols();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.77).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(a, b)| s * a + b).collect();
        let lhs = m.matvec(&combo);
        let mx = m.matvec(&x);
        let my = m.matvec(&y);
        for ((l, a), b) in lhs.iter().zip(&mx).zip(&my) {
            prop_assert!((l - (s * a + b)).abs() < 1e-9 * l.abs().max(1.0));
        }
    }

    /// The 4-row register-blocked matvec_acc_scaled is bitwise identical
    /// to the plain row-at-a-time loop: each row keeps one accumulator
    /// summing k in ascending order, blocking only interleaves rows.
    #[test]
    fn blocked_matvec_bitwise_matches_plain_loop(m in arb_matrix(13), s in -3.0f64..3.0) {
        let x: Vec<f64> = (0..m.cols()).map(|i| (i as f64 * 0.61).sin() * 2.0).collect();
        let mut got: Vec<f64> = (0..m.rows()).map(|i| (i as f64 * 1.17).cos()).collect();
        let mut want = got.clone();
        // Reference: the pre-blocking implementation, verbatim.
        for (yi, row) in want.iter_mut().zip(m.as_slice().chunks_exact(m.cols())) {
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(&x) { acc += a * b; }
            *yi += s * acc;
        }
        m.matvec_acc_scaled(&x, &mut got, s);
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    /// The multi-RHS GEMM is bitwise identical to one matvec per column
    /// for arbitrary shapes and RHS counts (including non-multiples of
    /// the MR/NR register block).
    #[test]
    fn gemm_bitwise_matches_matvec_columns(m in arb_matrix(12), nrhs in 1usize..20, s in -2.0f64..2.0) {
        let (rows, cols) = (m.rows(), m.cols());
        let x: Vec<f64> = (0..cols * nrhs).map(|i| (i as f64 * 0.37).sin() * 1.5).collect();
        let mut got: Vec<f64> = (0..rows * nrhs).map(|i| (i as f64 * 0.83).cos()).collect();
        let mut want = got.clone();
        for j in 0..nrhs {
            m.matvec_acc_scaled(&x[j * cols..(j + 1) * cols], &mut want[j * rows..(j + 1) * rows], s);
        }
        gemm_acc_scaled(&m, &x, &mut got, nrhs, s);
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    /// (AB)x == A(Bx).
    #[test]
    fn matmul_associates_with_matvec(a in arb_matrix(7), bseed in 0u64..100) {
        let inner = a.cols();
        let b = Matrix::from_fn(inner, 5, |i, j| ((i * 7 + j + bseed as usize) % 11) as f64 - 5.0);
        let x: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let lhs = a.matmul(&b).matvec(&x);
        let rhs = a.matvec(&b.matvec(&x));
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-9 * r.abs().max(1.0));
        }
    }
}
