//! Row-major dense matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
///
/// Sized for the FMM's translation operators (up to ~10³ per side); all
/// kernels iterate rows in the outer loop so matvec streams memory.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Build by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major storage, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// `y += self * x`.
    ///
    /// Bitwise identical to `matvec_acc_scaled(x, y, 1.0)`: multiplying a
    /// completed dot product by exactly 1.0 never changes its bits.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn matvec_acc(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_acc_scaled(x, y, 1.0);
    }

    /// `y += s * (self * x)` — the scaled accumulate used by the FMM's
    /// homogeneous-kernel operator rescaling.
    ///
    /// Rows are processed four at a time with one independent accumulator
    /// chain each, filling the FP add/mul pipelines; every row still sums
    /// `k` in ascending order with a single accumulator, so the result is
    /// bitwise identical to the plain row-at-a-time loop (property-tested
    /// in `tests/properties.rs`).
    pub fn matvec_acc_scaled(&self, x: &[f64], y: &mut [f64], s: f64) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(y.len(), self.rows, "matvec: y length");
        if self.cols == 0 {
            return;
        }
        let nq = self.rows / 4 * 4;
        let (yq, yr) = y.split_at_mut(nq);
        let (dq, dr) = self.data.split_at(nq * self.cols);
        for (yy, quad) in yq.chunks_exact_mut(4).zip(dq.chunks_exact(4 * self.cols)) {
            let (r0, rest) = quad.split_at(self.cols);
            let (r1, rest) = rest.split_at(self.cols);
            let (r2, r3) = rest.split_at(self.cols);
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for (((&v0, &v1), (&v2, &v3)), &xv) in r0.iter().zip(r1).zip(r2.iter().zip(r3)).zip(x) {
                a0 += v0 * xv;
                a1 += v1 * xv;
                a2 += v2 * xv;
                a3 += v3 * xv;
            }
            yy[0] += s * a0;
            yy[1] += s * a1;
            yy[2] += s * a2;
            yy[3] += s * a3;
        }
        for (yi, row) in yr.iter_mut().zip(dr.chunks_exact(self.cols)) {
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yi += s * acc;
        }
    }

    /// `self * x` as a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_acc(x, &mut y);
        y
    }

    /// `self * other` as a fresh matrix.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimensions");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streams `other` rows, cache-friendly row-major.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Scale every entry in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let m = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.25];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_acc_accumulates() {
        let a = Matrix::identity(3);
        let mut y = vec![1.0, 1.0, 1.0];
        a.matvec_acc(&[2.0, 3.0, 4.0], &mut y);
        assert_eq!(y, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_vec(1, 2, vec![3.0, -4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.max_abs(), 4.0);
    }
}
