//! Small dense linear algebra for the kernel-independent FMM.
//!
//! The KIFMM translation operators are dense matrices of dimension a few
//! hundred (kernel evaluations between equivalent and check surfaces); the
//! check→equivalent conversions require a *regularized pseudo-inverse*
//! (Ying et al. 2004, §3). This crate provides exactly that substrate:
//! row-major matrices, matvec/matmul, a one-sided Jacobi SVD, and
//! truncated-SVD pseudo-inversion.

pub mod gemm;
pub mod matrix;
pub mod svd;

pub use gemm::{gemm_acc, gemm_acc_scaled, gemm_acc_scaled_with, GemmScratch, GEMM_MR, GEMM_NR};
pub use matrix::Matrix;
pub use svd::{pinv, Svd};
