//! One-sided Jacobi SVD and truncated-SVD pseudo-inverse.
//!
//! The check→equivalent density solves of the KIFMM are ill-conditioned by
//! construction (that is what makes the equivalent representation compress
//! the far field), so a plain solve is unusable; the reference
//! implementation regularizes with a truncated SVD. Matrices are at most a
//! few hundred per side, where one-sided Jacobi is simple, accurate, and
//! fast enough (it is applied once per level during setup, then cached).

use crate::matrix::Matrix;

/// A thin singular value decomposition `A = U * diag(s) * Vᵀ`.
///
/// `u` is `m×r`, `vt` is `r×n`, `s` has length `r = min(m, n)`, sorted
/// descending.
pub struct Svd {
    /// Left singular vectors (columns), `m×r`.
    pub u: Matrix,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors (rows), `r×n`.
    pub vt: Matrix,
}

impl Svd {
    /// Compute the thin SVD of `a` by one-sided Jacobi.
    pub fn new(a: &Matrix) -> Svd {
        if a.rows() >= a.cols() {
            svd_tall(a)
        } else {
            // SVD(Aᵀ) = (V, s, Uᵀ); swap factors back.
            let t = svd_tall(&a.transpose());
            Svd {
                u: t.vt.transpose(),
                s: t.s,
                vt: t.u.transpose(),
            }
        }
    }

    /// Reconstruct `U * diag(s) * Vᵀ` (used by tests).
    pub fn reconstruct(&self) -> Matrix {
        let r = self.s.len();
        let mut us = self.u.clone();
        for i in 0..us.rows() {
            for j in 0..r {
                us[(i, j)] *= self.s[j];
            }
        }
        us.matmul(&self.vt)
    }
}

/// One-sided Jacobi on a tall (or square) matrix: rotate column pairs of a
/// working copy `w = A·V` until all pairs are numerically orthogonal.
fn svd_tall(a: &Matrix) -> Svd {
    let m = a.rows();
    let n = a.cols();
    debug_assert!(m >= n);
    let mut w = a.clone();
    let mut v = Matrix::identity(n);
    let eps = 1e-15;

    // Column-pair sweeps; n is a few hundred at most, convergence is
    // quadratic once rotations get small. 60 sweeps is far beyond need and
    // guards against pathological stalls.
    for _ in 0..60 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for the (p, q) column pair.
                let (mut app, mut aqq, mut apq) = (0.0, 0.0, 0.0);
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                if apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                off = off.max(apq.abs() / (app * aqq).sqrt().max(f64::MIN_POSITIVE));
                // Jacobi rotation zeroing the (p, q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    w[(i, p)] = c * wp - s * wq;
                    w[(i, q)] = s * wp + c * wq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if off < 1e-14 {
            break;
        }
    }

    // Singular values are the column norms of w; normalize into U.
    let mut s: Vec<f64> = (0..n)
        .map(|j| (0..m).map(|i| w[(i, j)] * w[(i, j)]).sum::<f64>().sqrt())
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| s[b].partial_cmp(&s[a]).expect("singular values are finite"));

    let mut u = Matrix::zeros(m, n);
    let mut vt = Matrix::zeros(n, n);
    let mut s_sorted = vec![0.0; n];
    for (new_j, &old_j) in order.iter().enumerate() {
        let sv = s[old_j];
        s_sorted[new_j] = sv;
        let inv = if sv > 0.0 { 1.0 / sv } else { 0.0 };
        for i in 0..m {
            u[(i, new_j)] = w[(i, old_j)] * inv;
        }
        for i in 0..n {
            vt[(new_j, i)] = v[(i, old_j)];
        }
    }
    s.clear();
    Svd { u, s: s_sorted, vt }
}

/// Truncated-SVD pseudo-inverse: singular values below
/// `rel_tol * s_max` are dropped.
///
/// This is the regularization the KIFMM uses for its UC2E/DC2E operators;
/// `rel_tol` around `1e-12` keeps full numerical rank, larger values trade
/// accuracy for stability.
///
/// ```
/// use pfmm_linalg::{pinv, Matrix};
///
/// let a = Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 4.0]);
/// let p = pinv(&a, 1e-12);
/// assert!((p[(0, 0)] - 0.5).abs() < 1e-12);
/// assert!((p[(1, 1)] - 0.25).abs() < 1e-12);
/// ```
pub fn pinv(a: &Matrix, rel_tol: f64) -> Matrix {
    let svd = Svd::new(a);
    let smax = svd.s.first().copied().unwrap_or(0.0);
    let cut = smax * rel_tol;
    let r = svd.s.len();
    // pinv = V * diag(1/s) * Uᵀ, assembled as (diag-scaled Vᵀ)ᵀ * Uᵀ.
    let v = svd.vt.transpose();
    let mut vs = v.clone();
    for j in 0..r {
        let inv = if svd.s[j] > cut && svd.s[j] > 0.0 {
            1.0 / svd.s[j]
        } else {
            0.0
        };
        for i in 0..vs.rows() {
            vs[(i, j)] *= inv;
        }
    }
    vs.matmul(&svd.u.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() < tol,
                    "entry ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn svd_reconstructs_random_tall() {
        let a = Matrix::from_fn(7, 4, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let svd = Svd::new(&a);
        assert_close(&svd.reconstruct(), &a, 1e-10);
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1], "singular values sorted descending");
        }
    }

    #[test]
    fn svd_reconstructs_wide() {
        let a = Matrix::from_fn(3, 6, |i, j| (i as f64 + 1.0) * (j as f64 - 2.5));
        let svd = Svd::new(&a);
        assert_close(&svd.reconstruct(), &a, 1e-10);
    }

    #[test]
    fn svd_of_identity() {
        let svd = Svd::new(&Matrix::identity(5));
        for s in &svd.s {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_values_of_diagonal() {
        let mut a = Matrix::zeros(4, 4);
        for (i, v) in [3.0, 1.0, 4.0, 2.0].iter().enumerate() {
            a[(i, i)] = *v;
        }
        let svd = Svd::new(&a);
        let want = [4.0, 3.0, 2.0, 1.0];
        for (got, want) in svd.s.iter().zip(want) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 7.0, 2.0, 6.0]);
        let p = pinv(&a, 1e-13);
        assert_close(&a.matmul(&p), &Matrix::identity(2), 1e-10);
        assert_close(&p.matmul(&a), &Matrix::identity(2), 1e-10);
    }

    #[test]
    fn pinv_moore_penrose_conditions() {
        // Rank-deficient: two identical columns.
        let a = Matrix::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let p = pinv(&a, 1e-10);
        // A P A = A and P A P = P.
        assert_close(&a.matmul(&p).matmul(&a), &a, 1e-9);
        assert_close(&p.matmul(&a).matmul(&p), &p, 1e-9);
    }

    #[test]
    fn pinv_least_squares_solution() {
        // Overdetermined consistent system.
        let a = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let x_true = [2.0, -1.0];
        let b = a.matvec(&x_true);
        let x = pinv(&a, 1e-13).matvec(&b);
        assert!((x[0] - 2.0).abs() < 1e-10 && (x[1] + 1.0).abs() < 1e-10);
    }
}
