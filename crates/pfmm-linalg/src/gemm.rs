//! Cache-blocked, register-tiled multi-RHS GEMM for the translation engine.
//!
//! The KIFMM upward/downward passes apply one shared per-level operator to
//! every box at that level. Applied box-by-box (`Matrix::matvec_acc_scaled`)
//! the operator is re-streamed from memory once per box and the pass is
//! GEMV-bound. This module provides the BLAS-3 reformulation: the density
//! vectors of `m` boxes are packed as the columns of a column-major RHS
//! panel and the operator is applied to all of them in one call, so each
//! operator element is loaded once per `GEMM_NR` right-hand sides instead
//! of once per box.
//!
//! Numerical contract (relied on by `pfmm-core::translate` for bitwise
//! schedule-equality): every output element keeps a **single accumulator**
//! and consumes `k` in ascending order with plain mul/add — the exact
//! operation sequence of `matvec_acc_scaled` on that column. Parallelism
//! comes only from *independent* accumulator chains across the MR×NR
//! register block, so `gemm_acc_scaled` is bitwise identical to calling
//! `matvec_acc_scaled` once per column, on every dispatch tier (rustc does
//! not contract `a * b + c` into an FMA, so the AVX2/AVX-512 clones of the
//! microkernel vectorize across lanes without changing any per-element
//! rounding).

use crate::Matrix;

/// Microkernel row block: independent accumulator chains per output row.
pub const GEMM_MR: usize = 16;
/// Microkernel column block: right-hand sides sharing one operator load.
pub const GEMM_NR: usize = 4;

/// Reusable pack/product panels for [`gemm_acc_scaled_with`]: a caller
/// that issues many GEMMs (the per-level translation sweep) reuses one
/// scratch so the steady state allocates nothing. A default (empty)
/// scratch works for any operator shape — panels grow to the high-water
/// mark and are then reused.
#[derive(Default)]
pub struct GemmScratch {
    ap: Vec<f64>,
    bp: Vec<f64>,
    out: Vec<f64>,
}

impl GemmScratch {
    /// Heap bytes held, by allocated capacity.
    pub fn memory_bytes(&self) -> usize {
        (self.ap.capacity() + self.bp.capacity() + self.out.capacity()) * std::mem::size_of::<f64>()
    }
}

/// `y[:, j] += a · x[:, j]` for `m` column vectors.
///
/// `x` is a column-major panel of `m` columns of length `a.cols()`;
/// `y` is a column-major panel of `m` columns of length `a.rows()`.
pub fn gemm_acc(a: &Matrix, x: &[f64], y: &mut [f64], m: usize) {
    gemm_acc_scaled(a, x, y, m, 1.0);
}

/// `y[:, j] += s * (a · x[:, j])` for `m` column vectors, with the scale
/// applied to each completed dot product — the `matvec_acc_scaled`
/// convention, column by column, bitwise.
pub fn gemm_acc_scaled(a: &Matrix, x: &[f64], y: &mut [f64], m: usize, s: f64) {
    gemm_acc_scaled_with(a, x, y, m, s, &mut GemmScratch::default());
}

/// [`gemm_acc_scaled`] reusing caller-owned pack panels: alloc-free once
/// the scratch has warmed to the largest operator/panel shape, bitwise
/// identical results (the panels are re-zeroed identically each call).
pub fn gemm_acc_scaled_with(
    a: &Matrix,
    x: &[f64],
    y: &mut [f64],
    m: usize,
    s: f64,
    sc: &mut GemmScratch,
) {
    let (rows, cols) = (a.rows(), a.cols());
    assert_eq!(x.len(), cols * m, "gemm: x panel length");
    assert_eq!(y.len(), rows * m, "gemm: y panel length");
    if rows == 0 || cols == 0 || m == 0 {
        return;
    }
    let nrb = rows.div_ceil(GEMM_MR);
    let ncb = m.div_ceil(GEMM_NR);

    // Pack A into MR-row panels: panel `ib` holds rows [ib*MR, ib*MR+MR)
    // interleaved as [k*MR + r], zero-padded past the last real row. The
    // microkernel then streams both panels with unit stride.
    sc.ap.clear();
    sc.ap.resize(nrb * GEMM_MR * cols, 0.0);
    let ap = &mut sc.ap;
    for ib in 0..nrb {
        let panel = &mut ap[ib * GEMM_MR * cols..(ib + 1) * GEMM_MR * cols];
        for r in 0..GEMM_MR {
            let i = ib * GEMM_MR + r;
            if i >= rows {
                break;
            }
            for (k, &v) in a.row(i).iter().enumerate() {
                panel[k * GEMM_MR + r] = v;
            }
        }
    }

    // Pack the RHS into NR-column panels [k*NR + c], zero-padded past the
    // last real column (padded columns are computed and discarded).
    sc.bp.clear();
    sc.bp.resize(ncb * GEMM_NR * cols, 0.0);
    let bp = &mut sc.bp;
    for jb in 0..ncb {
        let panel = &mut bp[jb * GEMM_NR * cols..(jb + 1) * GEMM_NR * cols];
        for c in 0..GEMM_NR {
            let j = jb * GEMM_NR + c;
            if j >= m {
                break;
            }
            for (k, &v) in x[j * cols..(j + 1) * cols].iter().enumerate() {
                panel[k * GEMM_NR + c] = v;
            }
        }
    }

    // Compute into a padded column-major product panel, then fold the
    // scaled result into `y`. Per element this is `y += s * dot`, the
    // same two operations `matvec_acc_scaled` performs.
    let rows_p = nrb * GEMM_MR;
    sc.out.clear();
    sc.out.resize(rows_p * ncb * GEMM_NR, 0.0);
    let out = &mut sc.out;
    gemm_panels(ap, bp, nrb, ncb, cols, rows_p, out);
    for j in 0..m {
        let oc = &out[j * rows_p..j * rows_p + rows];
        for (yv, &ov) in y[j * rows..(j + 1) * rows].iter_mut().zip(oc) {
            *yv += s * ov;
        }
    }
}

/// Packed-panel product: for each (row block, column block) pair an MR×NR
/// register tile of accumulators walks `k` in ascending order. The B panel
/// for one column block (`cols * NR` doubles) stays L1/L2-resident across
/// all row blocks, and each A element is loaded once per NR columns — the
/// panel-level cache blocking that makes the pass BLAS-3.
#[inline(always)]
fn gemm_panels_body(
    ap: &[f64],
    bp: &[f64],
    nrb: usize,
    ncb: usize,
    k: usize,
    rows_p: usize,
    out: &mut [f64],
) {
    for jb in 0..ncb {
        let bpanel = &bp[jb * GEMM_NR * k..(jb + 1) * GEMM_NR * k];
        for ib in 0..nrb {
            let apanel = &ap[ib * GEMM_MR * k..(ib + 1) * GEMM_MR * k];
            let mut acc = [[0.0f64; GEMM_NR]; GEMM_MR];
            for (ak, bk) in apanel
                .chunks_exact(GEMM_MR)
                .zip(bpanel.chunks_exact(GEMM_NR))
            {
                for r in 0..GEMM_MR {
                    let av = ak[r];
                    for c in 0..GEMM_NR {
                        acc[r][c] += av * bk[c];
                    }
                }
            }
            for c in 0..GEMM_NR {
                let col = &mut out[(jb * GEMM_NR + c) * rows_p + ib * GEMM_MR..][..GEMM_MR];
                for (r, cv) in col.iter_mut().enumerate() {
                    *cv = acc[r][c];
                }
            }
        }
    }
}

/// Runtime feature dispatch mirroring `pfmm-kernels::tile`: the same
/// `#[inline(always)]` body is instantiated per `#[target_feature]` set so
/// LLVM widens the NR-lane accumulator chains, with a portable fallback.
/// The detected tier is fixed per process, and because no tier contracts
/// mul/add, every tier produces bitwise-identical panels.
macro_rules! gemm_dispatch {
    ($entry:ident, $body:ident, $avx2:ident, $avx512:ident) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn $avx2(
            ap: &[f64],
            bp: &[f64],
            nrb: usize,
            ncb: usize,
            k: usize,
            rows_p: usize,
            out: &mut [f64],
        ) {
            $body(ap, bp, nrb, ncb, k, rows_p, out)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f,avx2,fma")]
        unsafe fn $avx512(
            ap: &[f64],
            bp: &[f64],
            nrb: usize,
            ncb: usize,
            k: usize,
            rows_p: usize,
            out: &mut [f64],
        ) {
            $body(ap, bp, nrb, ncb, k, rows_p, out)
        }

        fn $entry(
            ap: &[f64],
            bp: &[f64],
            nrb: usize,
            ncb: usize,
            k: usize,
            rows_p: usize,
            out: &mut [f64],
        ) {
            #[cfg(target_arch = "x86_64")]
            {
                let fma = std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma");
                if fma && std::arch::is_x86_feature_detected!("avx512f") {
                    // SAFETY: feature presence checked at runtime.
                    return unsafe { $avx512(ap, bp, nrb, ncb, k, rows_p, out) };
                }
                if fma {
                    // SAFETY: feature presence checked at runtime.
                    return unsafe { $avx2(ap, bp, nrb, ncb, k, rows_p, out) };
                }
            }
            $body(ap, bp, nrb, ncb, k, rows_p, out)
        }
    };
}

gemm_dispatch!(
    gemm_panels,
    gemm_panels_body,
    gemm_panels_avx2,
    gemm_panels_avx512
);

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            let h = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((j as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
                .wrapping_add(seed);
            (h % 1000) as f64 / 250.0 - 2.0
        })
    }

    fn panel(len: usize, m: usize, seed: u64) -> Vec<f64> {
        (0..len * m)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x94d0_49bb_1331_11eb)
                    .wrapping_add(seed);
                (h % 997) as f64 / 300.0 - 1.6
            })
            .collect()
    }

    /// The GEMM is bitwise identical to one matvec_acc_scaled per column —
    /// the contract the translation engine's scatter ordering relies on.
    #[test]
    fn gemm_bitwise_matches_per_column_matvec() {
        for &(rows, cols, m, s) in &[
            (1usize, 1usize, 1usize, 1.0f64),
            (4, 8, 8, 1.0),
            (5, 3, 2, -0.75),
            (17, 29, 11, 2.5),
            (152, 152, 37, 0.125),
            (96, 33, 1, 3.0),
            (3, 64, 23, -1.0),
        ] {
            let a = mat(rows, cols, 7);
            let x = panel(cols, m, 99);
            let mut y = panel(rows, m, 1234);
            let mut want = y.clone();
            for j in 0..m {
                a.matvec_acc_scaled(
                    &x[j * cols..(j + 1) * cols],
                    &mut want[j * rows..(j + 1) * rows],
                    s,
                );
            }
            gemm_acc_scaled(&a, &x, &mut y, m, s);
            for (j, (got, exp)) in y.iter().zip(&want).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    exp.to_bits(),
                    "({rows}x{cols}, m={m}, s={s}) element {j}: {got} vs {exp}"
                );
            }
        }
    }

    /// gemm_acc is the unscaled accumulate (s = 1 is exact).
    #[test]
    fn gemm_acc_matches_matvec_acc() {
        let a = mat(23, 17, 3);
        let x = panel(17, 9, 55);
        let mut y = vec![0.0; 23 * 9];
        gemm_acc(&a, &x, &mut y, 9);
        for j in 0..9 {
            let mut want = vec![0.0; 23];
            a.matvec_acc(&x[j * 17..(j + 1) * 17], &mut want);
            for (got, exp) in y[j * 23..(j + 1) * 23].iter().zip(&want) {
                assert_eq!(got.to_bits(), exp.to_bits());
            }
        }
    }

    /// Accumulation: existing y contents are preserved and added to.
    #[test]
    fn gemm_accumulates_into_existing_panel() {
        let a = mat(8, 8, 11);
        let x = panel(8, 4, 2);
        let mut y = panel(8, 4, 77);
        let base = y.clone();
        gemm_acc_scaled(&a, &x, &mut y, 4, 0.5);
        let mut fresh = vec![0.0; 8 * 4];
        gemm_acc_scaled(&a, &x, &mut fresh, 4, 0.5);
        for ((got, b), f) in y.iter().zip(&base).zip(&fresh) {
            assert_eq!(got.to_bits(), (b + f).to_bits());
        }
    }

    #[test]
    fn gemm_empty_panel_is_noop() {
        let a = mat(5, 5, 1);
        let mut y: Vec<f64> = vec![];
        gemm_acc_scaled(&a, &[], &mut y, 0, 2.0);
    }
}
