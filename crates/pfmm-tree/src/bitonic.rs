//! Distributed bitonic sort — the second half of the paper's parallel
//! sort ("combination of sample sort and bitonic sort" [Grama et al.]).
//!
//! Classic hypercube compare-split: every rank keeps a sorted block; for
//! `d = log₂p` stages of `1..=stage` rounds, partners exchange blocks,
//! merge, and keep the lower or upper half according to the stage's
//! direction bit. Blocks must be equal-sized for the network to sort, so
//! ranks pad to the global maximum with sentinel keys and strip them at
//! the end (the returned chunk sizes may therefore differ from the
//! inputs; the total is conserved).
//!
//! Sample sort (`sort::sample_sort_points`) is the default backend — its
//! single all-to-all wins at scale — but bitonic needs no splitter
//! quality guarantees, which is why the textbook hybrid uses it on the
//! sample keys; the `FmmConfig::sort` knob selects either for the whole
//! pipeline and the `pipeline` criterion bench compares them.

use crate::par::SetupPar;
use crate::point::PointRec;
use crate::psort;
use pfmm_morton::RANK_SPAN;
use pfmm_mpisim::collectives::allgather_one;
use pfmm_mpisim::Comm;

const TAG_BITONIC: u32 = 0x30;
const SENTINEL: u128 = u128::MAX;

type Keyed = (u128, PointRec);

/// [`bitonic_sort_points_with`] on the original serial path (comparison
/// sort); kept as the ablation baseline.
pub fn bitonic_sort_points(c: &Comm, pts: Vec<PointRec>) -> (Vec<PointRec>, Vec<u128>) {
    bitonic_sort_points_with(c, pts, SetupPar::Serial)
}

/// Globally sort points by (Morton key, gid) with a hypercube bitonic
/// network; rank `k`'s output precedes rank `k+1`'s. Returns this rank's
/// sorted chunk and the region fence derived from the final distribution.
///
/// `par` selects the local sort backend (comparison vs multithreaded
/// radix, bitwise-identical results); the compare-split rounds are
/// network-bound merges and stay serial.
///
/// # Panics
/// Panics if the communicator size is not a power of two (the bitonic
/// network is a hypercube algorithm; use sample sort otherwise).
pub fn bitonic_sort_points_with(
    c: &Comm,
    pts: Vec<PointRec>,
    par: SetupPar,
) -> (Vec<PointRec>, Vec<u128>) {
    let p = c.size();
    assert!(
        p.is_power_of_two(),
        "bitonic sort requires a power-of-two communicator"
    );
    let ranks = psort::ranks_of(par, &pts);
    let block: Vec<Keyed> = ranks.into_iter().zip(pts).collect();
    let mut block = psort::sort_keyed(par, block);
    if p == 1 {
        let out: Vec<PointRec> = block.into_iter().map(|(_, r)| r).collect();
        return (out, vec![0, RANK_SPAN]);
    }

    // Equal block sizes via sentinel padding.
    let n_max = allgather_one(c, block.len() as u64)
        .into_iter()
        .max()
        .expect("nonempty communicator") as usize;
    block.resize(n_max, (SENTINEL, PointRec::scalar([0.0; 3], 0.0, u64::MAX)));

    let d = p.trailing_zeros() as usize;
    let r = c.rank();
    for stage in 0..d {
        for sub in (0..=stage).rev() {
            let partner = r ^ (1 << sub);
            // Direction of the bitonic merge containing this rank.
            let ascending = (r >> (stage + 1)) & 1 == 0;
            let keep_small = ascending == (r < partner);
            block = compare_split(c, partner, block, keep_small);
        }
    }

    let out: Vec<PointRec> = block
        .into_iter()
        .filter(|(k, _)| *k != SENTINEL)
        .map(|(_, r)| r)
        .collect();

    // Region fence from the final first keys (empty ranks inherit their
    // right neighbor's start).
    let first = out.first().map(|r| r.key_rank()).unwrap_or(u128::MAX);
    let firsts = allgather_one(c, first);
    let mut region = vec![0u128; p + 1];
    region[p] = RANK_SPAN;
    for k in (1..p).rev() {
        region[k] = if firsts[k] != u128::MAX {
            firsts[k]
        } else {
            region[k + 1]
        };
    }
    (out, region)
}

/// Exchange blocks with `partner`, merge, keep the lower (or upper) half.
fn compare_split(c: &Comm, partner: usize, mine: Vec<Keyed>, keep_small: bool) -> Vec<Keyed> {
    let n = mine.len();
    let theirs = c.sendrecv(partner, TAG_BITONIC, &mine);
    debug_assert_eq!(theirs.len(), n, "equal blocks by padding");
    let key = |e: &Keyed| (e.0, e.1.gid);
    let mut out = Vec::with_capacity(n);
    if keep_small {
        let (mut i, mut j) = (0usize, 0usize);
        while out.len() < n {
            if j >= n || (i < n && key(&mine[i]) <= key(&theirs[j])) {
                out.push(mine[i]);
                i += 1;
            } else {
                out.push(theirs[j]);
                j += 1;
            }
        }
    } else {
        let (mut i, mut j) = (n as isize - 1, n as isize - 1);
        while out.len() < n {
            if j < 0 || (i >= 0 && key(&mine[i as usize]) >= key(&theirs[j as usize])) {
                out.push(mine[i as usize]);
                i -= 1;
            } else {
                out.push(theirs[j as usize]);
                j -= 1;
            }
        }
        out.reverse();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_mpisim::run;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64, base_gid: u64) -> Vec<PointRec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                PointRec::scalar(
                    [
                        rng.random::<f64>(),
                        rng.random::<f64>(),
                        rng.random::<f64>(),
                    ],
                    1.0,
                    base_gid + i as u64,
                )
            })
            .collect()
    }

    fn check(p: usize, counts: &[usize]) {
        let counts = counts.to_vec();
        let results = run(p, |c| {
            let n = counts[c.rank() % counts.len()];
            let pts = random_points(n, 7 + c.rank() as u64, (c.rank() * 10_000) as u64);
            bitonic_sort_points(c, pts)
        });
        let total_in: usize = (0..p).map(|r| counts[r % counts.len()]).sum();
        let mut last = 0u128;
        let mut total = 0usize;
        let mut gids = Vec::new();
        let fence = &results[0].1;
        for (k, (chunk, f)) in results.iter().enumerate() {
            assert_eq!(f, fence, "fence agreed");
            for r in chunk {
                assert!(r.key_rank() >= last, "global order");
                assert!(r.key_rank() >= fence[k] && r.key_rank() < fence[k + 1]);
                last = r.key_rank();
                gids.push(r.gid);
                total += 1;
            }
        }
        assert_eq!(total, total_in, "points conserved");
        gids.sort_unstable();
        gids.dedup();
        assert_eq!(gids.len(), total_in, "no duplicates");
    }

    #[test]
    fn sorts_equal_blocks() {
        for p in [1usize, 2, 4, 8] {
            check(p, &[64]);
        }
    }

    #[test]
    fn sorts_unequal_blocks_via_padding() {
        check(4, &[10, 77, 0, 33]);
        check(8, &[5, 50, 13, 28, 0, 64, 1, 40]);
    }

    #[test]
    fn parallel_local_sort_matches_serial() {
        for p in [1usize, 4] {
            let serial = run(p, |c| {
                let pts = random_points(90, 11 + c.rank() as u64, (c.rank() * 90) as u64);
                bitonic_sort_points(c, pts)
            });
            for t in [2usize, 8] {
                let par = run(p, |c| {
                    let pts = random_points(90, 11 + c.rank() as u64, (c.rank() * 90) as u64);
                    bitonic_sort_points_with(c, pts, SetupPar::Threads(t))
                });
                assert_eq!(par, serial, "p={p} threads={t}");
            }
        }
    }

    #[test]
    fn agrees_with_sample_sort() {
        let p = 4;
        let per = 120;
        let both = run(p, |c| {
            let pts = random_points(per, 31 + c.rank() as u64, (c.rank() * per) as u64);
            let (bit, _) = bitonic_sort_points(c, pts.clone());
            let (smp, _) = crate::sort::sample_sort_points(c, pts);
            (bit, smp)
        });
        // Concatenated global sequences must be identical.
        let a: Vec<u64> = both
            .iter()
            .flat_map(|pair| pair.0.iter().map(|r| r.gid))
            .collect();
        let b: Vec<u64> = both
            .iter()
            .flat_map(|pair| pair.1.iter().map(|r| r.gid))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rejects_non_power_of_two() {
        run(3, |c| {
            bitonic_sort_points(c, random_points(8, 1, c.rank() as u64 * 8))
        });
    }
}
