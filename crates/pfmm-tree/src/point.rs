//! The point record that travels through sorting and redistribution.

use pfmm_morton::{MortonKey, Point3};

/// A source/target particle (the paper assumes the two sets coincide).
///
/// The record is `Copy` so it can cross ranks through the `mpisim` wire;
/// it carries up to three density components (Laplace uses 1, Stokes 3 —
/// the paper's two kernels) and a global id so potentials can be routed
/// back to whoever supplied the point (the algorithm owns the final
/// distribution, per §III).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PointRec {
    /// Position in the unit cube.
    pub pos: Point3,
    /// Density components; entries beyond the kernel's `source_dim` are
    /// ignored.
    pub den: [f64; 3],
    /// Global id assigned by the caller (unique across ranks).
    pub gid: u64,
}

impl PointRec {
    /// A point with a scalar density.
    pub fn scalar(pos: Point3, den: f64, gid: u64) -> Self {
        PointRec {
            pos,
            den: [den, 0.0, 0.0],
            gid,
        }
    }

    /// A point with a vector density.
    pub fn vector(pos: Point3, den: [f64; 3], gid: u64) -> Self {
        PointRec { pos, den, gid }
    }

    /// The finest-level Morton rank used as the sort key.
    #[inline]
    pub fn key_rank(&self) -> u128 {
        MortonKey::finest_from_point(&self.pos).rank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_rank_orders_by_morton() {
        let a = PointRec::scalar([0.01, 0.01, 0.01], 1.0, 0);
        let b = PointRec::scalar([0.99, 0.99, 0.99], 1.0, 1);
        assert!(a.key_rank() < b.key_rank());
    }
}
