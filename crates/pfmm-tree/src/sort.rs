//! Distributed sample sort of points by Morton key.
//!
//! The paper reports the parallel sort as the main setup cost (15 of 27
//! seconds at 65,536 ranks) with "textbook scalability"; the algorithm is
//! the classic sample sort: local sort, regular sampling, splitter
//! selection, bucket exchange, local merge. The splitters are returned as
//! a `p+1`-entry fence in Morton-rank space — they *define* the geometric
//! regions `Ω_k` each rank controls for the rest of the pipeline.

use crate::par::SetupPar;
use crate::point::PointRec;
use crate::psort;
use pfmm_morton::{MAX_DEPTH, RANK_SPAN};
use pfmm_mpisim::collectives::allgatherv;
use pfmm_mpisim::Comm;

/// Oversampling factor: samples per rank presented to splitter selection.
const OVERSAMPLE: usize = 32;

/// [`sample_sort_points_with`] on the original serial path (comparison
/// sort); kept as the ablation baseline and for callers without a
/// thread budget.
pub fn sample_sort_points(c: &Comm, pts: Vec<PointRec>) -> (Vec<PointRec>, Vec<u128>) {
    sample_sort_points_with(c, pts, SetupPar::Serial)
}

/// Globally sort points by (Morton key, gid) and return this rank's
/// contiguous chunk plus the region fence.
///
/// Returned fence `spl` has `p + 1` entries with `spl[0] = 0` and
/// `spl[p] = RANK_SPAN`; rank `k` ends up holding exactly the points whose
/// finest-key rank lies in `[spl[k], spl[k+1])`. Points with equal keys
/// (coincident positions) never straddle a region boundary.
///
/// `par` selects the local sort backend: the serial comparison sort, or
/// the multithreaded LSD radix sort of [`crate::psort`] — the output is
/// bitwise identical either way (unique `(rank, gid)` keys admit exactly
/// one sorted permutation), so splitters, buckets, and the fence agree.
pub fn sample_sort_points_with(
    c: &Comm,
    pts: Vec<PointRec>,
    par: SetupPar,
) -> (Vec<PointRec>, Vec<u128>) {
    let p = c.size();
    let pts = psort::sort_points(par, pts);
    if p == 1 {
        return (pts, vec![0, RANK_SPAN]);
    }

    // Regular samples of the locally sorted keys.
    let s = OVERSAMPLE.min(pts.len());
    let samples: Vec<u128> = (0..s)
        .map(|i| pts[i * pts.len() / s.max(1)].key_rank())
        .collect();
    let mut all_samples = allgatherv(c, &samples);
    all_samples.sort_unstable();

    // p-1 splitters by regular selection from the gathered samples; every
    // rank computes the same fence deterministically.
    let mut spl = Vec::with_capacity(p + 1);
    spl.push(0u128);
    if all_samples.is_empty() {
        // Degenerate (no points anywhere): evenly split rank space.
        for k in 1..p {
            spl.push(RANK_SPAN / p as u128 * k as u128);
        }
    } else {
        for k in 1..p {
            let idx = k * all_samples.len() / p;
            spl.push(all_samples[idx.min(all_samples.len() - 1)]);
        }
        // Coincident samples could produce equal splitters (then some rank
        // owns an empty region, which the rest of the pipeline tolerates,
        // but strictly increasing fences keep regions well-formed where
        // possible).
        for k in 1..p {
            if spl[k] <= spl[k - 1] {
                spl[k] = (spl[k - 1] + 1).min(RANK_SPAN - 1);
            }
        }
        // Align each splitter to the coarsest octant boundary that (a)
        // stays above its left neighbor and (b) moves the splitter by at
        // most half of its gap to that neighbor. Raw point-key fences cut
        // octants at the finest grid, forcing MAX_DEPTH slivers along
        // every region boundary (the amplified form of the DENDRO caveat
        // the paper notes); octant-aligned fences bound the sliver depth
        // by the separation scale of the data, like DENDRO's block
        // partition — and the displacement bound keeps the pre-balance
        // point counts within ~1.5x of even.
        for k in 1..p {
            let gap = spl[k] - spl[k - 1];
            let floor = spl[k] - gap / 2;
            for level in 0..=MAX_DEPTH {
                let align = 1u128 << (3 * (MAX_DEPTH - level));
                let rounded = spl[k] - spl[k] % align;
                if rounded > spl[k - 1] && rounded >= floor {
                    spl[k] = rounded;
                    break;
                }
            }
        }
    }
    spl.push(RANK_SPAN);

    // Bucket by fence: destination k has spl[k] <= key < spl[k+1]. The
    // Morton ranks are re-derived chunk-parallel; the bucket fill itself
    // stays serial so each destination sees its points in sorted order.
    let ranks = psort::ranks_of(par, &pts);
    let mut outgoing: Vec<Vec<PointRec>> = vec![Vec::new(); p];
    for (r, key) in pts.into_iter().zip(ranks) {
        // partition_point gives the count of fence entries <= key over
        // spl[1..p]; that count is the destination rank.
        let dest = spl[1..p].partition_point(|&f| f <= key);
        outgoing[dest].push(r);
    }
    let received = pfmm_mpisim::collectives::alltoallv(c, outgoing);
    let mine: Vec<PointRec> = received.into_iter().flatten().collect();
    let mine = psort::sort_points(par, mine);
    (mine, spl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_mpisim::run;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64, base_gid: u64) -> Vec<PointRec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                PointRec::scalar(
                    [
                        rng.random::<f64>(),
                        rng.random::<f64>(),
                        rng.random::<f64>(),
                    ],
                    1.0,
                    base_gid + i as u64,
                )
            })
            .collect()
    }

    fn check_sorted_partition(p: usize, n_per: usize) {
        let results = run(p, |c| {
            let pts = random_points(n_per, 42 + c.rank() as u64, (c.rank() * n_per) as u64);
            sample_sort_points(c, pts)
        });
        let fence = results[0].1.clone();
        assert_eq!(fence.len(), p + 1);
        assert_eq!(fence[0], 0);
        assert_eq!(fence[p], RANK_SPAN);
        let mut total = 0;
        let mut all_gids = Vec::new();
        for (k, (chunk, f)) in results.iter().enumerate() {
            assert_eq!(f, &fence, "all ranks agree on the fence");
            total += chunk.len();
            for w in chunk.windows(2) {
                assert!(w[0].key_rank() <= w[1].key_rank(), "locally sorted");
            }
            for r in chunk {
                assert!(r.key_rank() >= fence[k] && r.key_rank() < fence[k + 1]);
                all_gids.push(r.gid);
            }
        }
        assert_eq!(total, p * n_per, "no point lost or duplicated");
        all_gids.sort_unstable();
        all_gids.dedup();
        assert_eq!(all_gids.len(), p * n_per);
    }

    #[test]
    fn single_rank_sort() {
        check_sorted_partition(1, 100);
    }

    #[test]
    fn multi_rank_sort() {
        for p in [2, 3, 4, 8] {
            check_sorted_partition(p, 200);
        }
    }

    #[test]
    fn globally_ordered_across_ranks() {
        let p = 4;
        let results = run(p, |c| {
            let pts = random_points(100, 7 + c.rank() as u64, (c.rank() * 100) as u64);
            sample_sort_points(c, pts).0
        });
        let mut last = 0u128;
        for chunk in &results {
            for r in chunk {
                assert!(r.key_rank() >= last);
                last = r.key_rank();
            }
        }
    }

    #[test]
    fn empty_input_on_some_ranks() {
        let results = run(3, |c| {
            let pts = if c.rank() == 1 {
                Vec::new()
            } else {
                random_points(50, 9, (c.rank() * 50) as u64)
            };
            sample_sort_points(c, pts).0
        });
        let total: usize = results.iter().map(|v| v.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn parallel_setup_matches_serial_across_ranks() {
        // The radix backend must reproduce the serial sample sort's
        // chunks and fence exactly, on every rank and thread count.
        for p in [1usize, 3, 4] {
            let serial = run(p, |c| {
                let pts = random_points(120, 3 + c.rank() as u64, (c.rank() * 120) as u64);
                sample_sort_points(c, pts)
            });
            for t in [1usize, 2, 8] {
                let par = run(p, |c| {
                    let pts = random_points(120, 3 + c.rank() as u64, (c.rank() * 120) as u64);
                    sample_sort_points_with(c, pts, SetupPar::Threads(t))
                });
                assert_eq!(par, serial, "p={p} threads={t}");
            }
        }
    }

    #[test]
    fn coincident_points_stay_together() {
        // All points identical: they must all land on one rank.
        let results = run(4, |c| {
            let pts: Vec<PointRec> = (0..25)
                .map(|i| PointRec::scalar([0.5, 0.5, 0.5], 1.0, (c.rank() * 25 + i) as u64))
                .collect();
            sample_sort_points(c, pts).0
        });
        let nonempty: Vec<usize> = results.iter().map(|v| v.len()).filter(|&l| l > 0).collect();
        assert_eq!(nonempty, vec![100], "coincident keys never split");
    }
}
