//! Tree and interaction-list diagnostics.
//!
//! The paper characterizes its runs by tree shape ("the tree used in this
//! calculation spanned seven orders of spatial scales") and by per-phase
//! work shares driven by list sizes. This module computes those numbers
//! for any LET — used by the examples, the harness binaries, and anyone
//! deciding whether their distribution needs the load balancer.

use crate::lett::Let;
use crate::lists::Lists;

/// Shape statistics of (this rank's view of) the tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TreeStats {
    /// Octants in the LET.
    pub octants: usize,
    /// Leaf octants (global-tree leaves present here).
    pub leaves: usize,
    /// Owned leaves.
    pub owned_leaves: usize,
    /// Point-carrying leaves.
    pub occupied_leaves: usize,
    /// Leaf count per level (index = level).
    pub leaves_per_level: Vec<usize>,
    /// Smallest and largest leaf level present.
    pub leaf_levels: (u32, u32),
    /// Minimum / mean / maximum points over occupied leaves.
    pub points_per_leaf: (usize, f64, usize),
}

impl TreeStats {
    /// Compute shape statistics for a LET.
    pub fn of(l: &Let) -> TreeStats {
        let mut s = TreeStats {
            octants: l.len(),
            ..Default::default()
        };
        let mut min_l = u32::MAX;
        let mut max_l = 0;
        let mut min_p = usize::MAX;
        let mut max_p = 0usize;
        let mut sum_p = 0usize;
        for i in 0..l.len() {
            if !l.is_leaf[i] {
                continue;
            }
            s.leaves += 1;
            if l.owned[i] {
                s.owned_leaves += 1;
            }
            let lv = l.octs[i].level();
            min_l = min_l.min(lv);
            max_l = max_l.max(lv);
            if s.leaves_per_level.len() <= lv as usize {
                s.leaves_per_level.resize(lv as usize + 1, 0);
            }
            s.leaves_per_level[lv as usize] += 1;
            let np = l.points_of(i).len();
            if np > 0 {
                s.occupied_leaves += 1;
                min_p = min_p.min(np);
                max_p = max_p.max(np);
                sum_p += np;
            }
        }
        s.leaf_levels = if s.leaves > 0 { (min_l, max_l) } else { (0, 0) };
        s.points_per_leaf = if s.occupied_leaves > 0 {
            (min_p, sum_p as f64 / s.occupied_leaves as f64, max_p)
        } else {
            (0, 0.0, 0)
        };
        s
    }

    /// Number of levels the tree spans ("orders of spatial scales").
    pub fn level_span(&self) -> u32 {
        self.leaf_levels.1 - self.leaf_levels.0
    }
}

/// Aggregate interaction-list statistics over the local octants.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ListStats {
    /// Total U entries and the max row length.
    pub u: (usize, usize),
    /// Total V entries and the max row length.
    pub v: (usize, usize),
    /// Total W entries and the max row length.
    pub w: (usize, usize),
    /// Total X entries and the max row length.
    pub x: (usize, usize),
    /// Direct source-target pair count implied by the U-lists.
    pub direct_pairs: u64,
}

impl ListStats {
    /// Compute list statistics for a LET's lists.
    pub fn of(l: &Let, lists: &Lists) -> ListStats {
        let mut s = ListStats::default();
        let agg = |total: &mut (usize, usize), row: &[u32]| {
            total.0 += row.len();
            total.1 = total.1.max(row.len());
        };
        for bi in 0..l.len() {
            agg(&mut s.u, lists.u.row(bi));
            agg(&mut s.v, lists.v.row(bi));
            agg(&mut s.w, lists.w.row(bi));
            agg(&mut s.x, lists.x.row(bi));
            if l.owned[bi] {
                let n = l.points_of(bi).len() as u64;
                for &ai in lists.u.row(bi) {
                    s.direct_pairs += n * l.points_of(ai as usize).len() as u64;
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtree::points_to_octree;
    use crate::lett::build_let;
    use crate::lists::build_lists;
    use crate::point::PointRec;
    use pfmm_mpisim::run;

    fn grid_points(n: usize) -> Vec<PointRec> {
        (0..n)
            .map(|i| {
                let f = (i as f64 + 0.5) / n as f64;
                PointRec::scalar([f, (f * 13.7) % 1.0, (f * 5.1) % 1.0], 1.0, i as u64)
            })
            .collect()
    }

    #[test]
    fn stats_count_the_tree() {
        let l = run(1, |c| {
            build_let(c, &points_to_octree(c, grid_points(500), 10))
        })
        .pop()
        .expect("one rank");
        let s = TreeStats::of(&l);
        assert_eq!(s.octants, l.len());
        assert_eq!(s.leaves, l.is_leaf.iter().filter(|&&b| b).count());
        assert_eq!(s.leaves, s.leaves_per_level.iter().sum::<usize>());
        assert!(s.points_per_leaf.2 <= 10, "respects q");
        let total_pts: usize = (0..l.len()).map(|i| l.points_of(i).len()).sum();
        assert_eq!(total_pts, 500);
        assert!(s.level_span() < 31);
    }

    #[test]
    fn list_stats_match_direct_count() {
        let (l, lists) = run(1, |c| {
            let t = points_to_octree(c, grid_points(300), 8);
            let l = build_let(c, &t);
            let lists = build_lists(&l);
            (l, lists)
        })
        .pop()
        .expect("one rank");
        let s = ListStats::of(&l, &lists);
        assert_eq!(s.u.0, lists.u.total());
        assert_eq!(s.v.0, lists.v.total());
        // Every point interacts at least with its own leaf-mates.
        assert!(s.direct_pairs >= 300);
        // U rows are bounded by geometry (≤ 26 same-size neighbors plus
        // finer adjacents plus self); sanity-bound generously.
        assert!(s.u.1 < 200);
    }

    #[test]
    fn empty_rank_stats_are_zero() {
        // Rank with an empty region still computes coherent stats.
        let all = run(4, |c| {
            let pts = if c.rank() == 0 {
                grid_points(50)
            } else {
                Vec::new()
            };
            let t = points_to_octree(c, pts, 8);
            let l = build_let(c, &t);
            TreeStats::of(&l)
        });
        for s in &all {
            assert!(s.occupied_leaves <= s.leaves);
        }
    }
}
