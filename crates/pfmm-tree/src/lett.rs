//! Local Essential Tree construction — Algorithm 2 of the paper.
//!
//! Each rank's LET is the union of its own leaves, their ancestors, and
//! the *ghost* octants other ranks contribute: rank `k` sends octant
//! `β ∈ B_k` to rank `k'` whenever the colleagues of `β`'s parent overlap
//! `Ω_{k'}` (the "user" test of §III-A). Ghost leaves travel with their
//! points so the U- and X-list direct interactions need no further
//! communication; ghost up-densities are filled in later by the
//! reduce-and-scatter of the evaluation phase.

use crate::dtree::DistTree;
use crate::lists::sorted_dedup;
use crate::par::{chunk_cuts, par_map_n, SetupPar};
use crate::point::PointRec;
use pfmm_morton::{MortonKey, RANK_SPAN};
use pfmm_mpisim::collectives::alltoallv;
use pfmm_mpisim::Comm;

/// The Local Essential Tree: every octant this rank needs to evaluate the
/// potential on its owned leaves, in one Morton-sorted array.
#[derive(Clone, Debug)]
pub struct Let {
    /// All LET octants, Morton-sorted, deduplicated.
    pub octs: Vec<MortonKey>,
    /// Packed `(rank << 5) | level` sort keys, aligned with `octs`. The
    /// interaction-list walks probe the LET thousands of times per box;
    /// comparing precomputed `u128`s keeps those probes from re-deriving
    /// the 90-bit rank interleave on every comparison.
    pub keys: Vec<u128>,
    /// Octant is a leaf of the *global* tree.
    pub is_leaf: Vec<bool>,
    /// Octant is an owned leaf (this rank computes its potentials).
    pub owned: Vec<bool>,
    /// Octant is local (owned leaf or ancestor of one): the set `B_k` the
    /// rank evaluates lists and down-densities for.
    pub local: Vec<bool>,
    /// CSR offsets into [`Let::pts`]: points of octant `i` (nonempty only
    /// for owned leaves and ghost leaves).
    pub pt_off: Vec<usize>,
    /// Point records (owned ones first per octant order, ghosts merged in).
    pub pts: Vec<PointRec>,
    /// Region fence (`p + 1` entries), shared by all ranks.
    pub region: Vec<u128>,
}

impl Let {
    /// Binary search for an exact octant key.
    pub fn find(&self, k: &MortonKey) -> Option<usize> {
        self.keys.binary_search(&k.sort_key()).ok()
    }

    /// Points stored for octant `i`.
    pub fn points_of(&self, i: usize) -> &[PointRec] {
        &self.pts[self.pt_off[i]..self.pt_off[i + 1]]
    }

    /// Number of octants in the LET.
    pub fn len(&self) -> usize {
        self.octs.len()
    }

    /// True when the LET is empty (a rank with an empty region).
    pub fn is_empty(&self) -> bool {
        self.octs.is_empty()
    }

    /// Indices of owned leaves, in Morton order.
    pub fn owned_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.owned[i]).collect()
    }

    /// Contiguous index range `[start, end)` of the subtree rooted at
    /// octant `i` (descendants including `i` itself).
    pub fn subtree_range(&self, key: &MortonKey) -> (usize, usize) {
        let sk = key.sort_key();
        let re = key.rank_end();
        let start = self.keys.partition_point(|&pk| pk < sk);
        let end = self.keys.partition_point(|&pk| (pk >> 5) <= re);
        (start, end)
    }

    /// The ranks whose regions a rank-space interval `[a, b]` intersects.
    pub fn ranks_overlapping(&self, a: u128, b: u128) -> std::ops::RangeInclusive<usize> {
        debug_assert!(a <= b);
        let p = self.region.len() - 1;
        let lo = self.region[1..p].partition_point(|&s| s <= a);
        let hi = self.region[1..p].partition_point(|&s| s <= b);
        lo..=hi
    }

    /// Heap bytes held by this LET (element counts × element sizes; used
    /// for the serve-layer plan-cache budget accounting).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.octs.len() * size_of::<MortonKey>()
            + self.keys.len() * size_of::<u128>()
            + self.is_leaf.len()
            + self.owned.len()
            + self.local.len()
            + self.pt_off.len() * size_of::<usize>()
            + self.pts.len() * size_of::<crate::PointRec>()
            + self.region.len() * size_of::<u128>()
    }
}

/// Ghost-octant wire record.
#[derive(Copy, Clone)]
struct OctMsg {
    key: MortonKey,
    is_leaf: bool,
    npts: u32,
}

/// The ranks whose regions the "user" area of `β` (the colleagues of its
/// parent, §III-A) intersects. The root and level-1 octants are used by
/// everyone. Deterministic in (β, region): senders and receivers can
/// derive matching exchange plans without communicating.
pub fn user_ranks(beta: &MortonKey, region: &[u128], out: &mut Vec<usize>) {
    out.clear();
    let p = region.len() - 1;
    let push_interval = |a: u128, b: u128, out: &mut Vec<usize>| {
        let lo = region[1..p].partition_point(|&s| s <= a);
        let hi = region[1..p].partition_point(|&s| s <= b);
        for k in lo..=hi {
            out.push(k);
        }
    };
    match beta.parent() {
        None => push_interval(0, RANK_SPAN - 1, out),
        Some(par) => {
            for c in par.colleagues_and_self() {
                push_interval(c.rank(), c.rank_end(), out);
            }
        }
    }
    sorted_dedup(out);
}

/// Build this rank's LET from its share of the distributed tree
/// (Algorithm 2). The tree's points are *moved* into the LET.
pub fn build_let(c: &Comm, tree: &DistTree) -> Let {
    build_let_with(c, tree, SetupPar::Serial)
}

/// [`build_let`] with a parallelism budget. The ancestor collection and
/// the per-β user-rank derivation are chunk-parallel (both are pure
/// functions of the leaf array and the region fence, reassembled in
/// input order); the message fills, exchanges, and the ghost merge stay
/// serial so every destination sees its octants in the exact order the
/// serial path sends them.
pub fn build_let_with(c: &Comm, tree: &DistTree, par: SetupPar) -> Let {
    let p = c.size();
    let my = c.rank();
    let region = tree.region.clone();
    let t = par.threads();

    // B_k: owned leaves and all their ancestors, with origin bookkeeping.
    let mut b: Vec<(MortonKey, bool, u32)> = Vec::with_capacity(tree.leaves.len() * 2);
    for (i, leaf) in tree.leaves.iter().enumerate() {
        b.push((*leaf, true, i as u32));
    }
    {
        let cuts = chunk_cuts(t, tree.leaves.len());
        let chunks = par_map_n(t, cuts.len() - 1, |k| {
            let mut anc: Vec<MortonKey> = Vec::new();
            for leaf in &tree.leaves[cuts[k]..cuts[k + 1]] {
                anc.extend(leaf.ancestors());
            }
            anc
        });
        let mut anc: Vec<MortonKey> = chunks.into_iter().flatten().collect();
        sorted_dedup(&mut anc);
        for a in anc {
            b.push((a, false, u32::MAX));
        }
    }
    b.sort_unstable_by_key(|(k, _, _)| *k);

    // Step 3–4: route every β ∈ B_k to its user ranks, leaves carrying
    // their points. The user sets are derived in parallel; the fill
    // below walks them in β order, so each destination's message stream
    // is identical to the serial build's.
    let users_of: Vec<Vec<usize>> = par_map_n(t, b.len(), |i| {
        let mut users = Vec::new();
        user_ranks(&b[i].0, &region, &mut users);
        users
    });
    let mut out_octs: Vec<Vec<OctMsg>> = vec![Vec::new(); p];
    let mut out_pts: Vec<Vec<PointRec>> = vec![Vec::new(); p];
    for (&(key, is_leaf, leaf_idx), users) in b.iter().zip(&users_of) {
        for &k in users {
            if k == my {
                continue;
            }
            let pts: &[PointRec] = if is_leaf {
                let i = leaf_idx as usize;
                &tree.pts[tree.leaf_off[i]..tree.leaf_off[i + 1]]
            } else {
                &[]
            };
            out_octs[k].push(OctMsg {
                key,
                is_leaf,
                npts: pts.len() as u32,
            });
            out_pts[k].extend_from_slice(pts);
        }
    }
    let in_octs = alltoallv(c, out_octs);
    let in_pts = alltoallv(c, out_pts);

    // Merge local B with received ghosts; duplicates are non-leaf
    // ancestors shared between contributors (leaves have unique owners).
    struct Entry {
        key: MortonKey,
        is_leaf: bool,
        owned: bool,
        local: bool,
        pts: Vec<PointRec>,
    }
    let mut entries: Vec<Entry> = Vec::with_capacity(b.len() * 2);
    for (key, is_leaf, leaf_idx) in b {
        let pts = if is_leaf {
            let i = leaf_idx as usize;
            tree.pts[tree.leaf_off[i]..tree.leaf_off[i + 1]].to_vec()
        } else {
            Vec::new()
        };
        entries.push(Entry {
            key,
            is_leaf,
            owned: is_leaf,
            local: true,
            pts,
        });
    }
    for (msgs, pts) in in_octs.into_iter().zip(in_pts) {
        let mut off = 0usize;
        for m in msgs {
            let take = m.npts as usize;
            entries.push(Entry {
                key: m.key,
                is_leaf: m.is_leaf,
                owned: false,
                local: false,
                pts: pts[off..off + take].to_vec(),
            });
            off += take;
        }
        debug_assert_eq!(off, pts.len());
    }
    entries.sort_by_key(|e| e.key);

    let mut octs = Vec::with_capacity(entries.len());
    let mut is_leaf = Vec::with_capacity(entries.len());
    let mut owned = Vec::with_capacity(entries.len());
    let mut local = Vec::with_capacity(entries.len());
    let mut pt_off = vec![0usize];
    let mut pts = Vec::new();
    let mut iter = entries.into_iter().peekable();
    while let Some(e) = iter.next() {
        let mut merged = e;
        while let Some(next) = iter.peek() {
            if next.key != merged.key {
                break;
            }
            let dup = iter.next().expect("peeked");
            debug_assert_eq!(dup.is_leaf, merged.is_leaf, "leaf flag consistent");
            merged.owned |= dup.owned;
            merged.local |= dup.local;
            if merged.pts.is_empty() {
                merged.pts = dup.pts;
            }
        }
        octs.push(merged.key);
        is_leaf.push(merged.is_leaf);
        owned.push(merged.owned);
        local.push(merged.local);
        pts.extend(merged.pts);
        pt_off.push(pts.len());
    }

    let keys = octs.iter().map(|o| o.sort_key()).collect();
    Let {
        octs,
        keys,
        is_leaf,
        owned,
        local,
        pt_off,
        pts,
        region,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtree::points_to_octree;
    use pfmm_mpisim::run;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64, base_gid: u64) -> Vec<PointRec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                PointRec::scalar(
                    [
                        rng.random::<f64>(),
                        rng.random::<f64>(),
                        rng.random::<f64>(),
                    ],
                    1.0,
                    base_gid + i as u64,
                )
            })
            .collect()
    }

    fn build(p: usize, n_per: usize, q: usize) -> Vec<Let> {
        run(p, |c| {
            let t = points_to_octree(
                c,
                random_points(n_per, 31 + c.rank() as u64, (c.rank() * n_per) as u64),
                q,
            );
            build_let(c, &t)
        })
    }

    #[test]
    fn sequential_let_is_whole_tree() {
        let lets = build(1, 400, 8);
        let l = &lets[0];
        // p=1: every octant local, leaves owned, no ghosts.
        assert!(l.local.iter().all(|&x| x));
        for i in 0..l.len() {
            assert_eq!(l.owned[i], l.is_leaf[i]);
        }
        // Leaves of the LET form a complete linear octree.
        let leaves: Vec<MortonKey> = (0..l.len())
            .filter(|&i| l.is_leaf[i])
            .map(|i| l.octs[i])
            .collect();
        assert!(pfmm_morton::is_complete_linear(&leaves));
        // Every ancestor of every leaf is present.
        for leaf in &leaves {
            for a in leaf.ancestors() {
                assert!(l.find(&a).is_some());
            }
        }
    }

    #[test]
    fn let_octants_sorted_unique() {
        for lets in [build(2, 250, 6), build(4, 250, 6)] {
            for l in &lets {
                for w in l.octs.windows(2) {
                    assert!(w[0] < w[1], "sorted, deduplicated");
                }
                assert_eq!(l.pt_off.len(), l.len() + 1);
            }
        }
    }

    #[test]
    fn parallel_let_matches_serial() {
        for p in [1usize, 4] {
            let serial = build(p, 250, 6);
            for t in [2usize, 8] {
                let par = run(p, |c| {
                    let tr = points_to_octree(
                        c,
                        random_points(250, 31 + c.rank() as u64, (c.rank() * 250) as u64),
                        6,
                    );
                    build_let_with(c, &tr, SetupPar::Threads(t))
                });
                for (a, s) in par.iter().zip(&serial) {
                    assert_eq!(a.octs, s.octs, "p={p} t={t}");
                    assert_eq!(a.is_leaf, s.is_leaf, "p={p} t={t}");
                    assert_eq!(a.owned, s.owned, "p={p} t={t}");
                    assert_eq!(a.local, s.local, "p={p} t={t}");
                    assert_eq!(a.pt_off, s.pt_off, "p={p} t={t}");
                    assert_eq!(a.pts, s.pts, "p={p} t={t}");
                    assert_eq!(a.region, s.region, "p={p} t={t}");
                }
            }
        }
    }

    #[test]
    fn owned_leaves_match_tree_partition() {
        let p = 4;
        let n = 250;
        let pairs = run(p, |c| {
            let t = points_to_octree(
                c,
                random_points(n, 31 + c.rank() as u64, (c.rank() * n) as u64),
                6,
            );
            let leaves = t.leaves.clone();
            (leaves, build_let(c, &t))
        });
        for (leaves, l) in &pairs {
            let owned: Vec<MortonKey> = l.owned_indices().into_iter().map(|i| l.octs[i]).collect();
            assert_eq!(&owned, leaves);
        }
    }

    #[test]
    fn ghost_leaves_carry_points() {
        let lets = build(4, 250, 6);
        let mut saw_ghost_with_points = false;
        for l in &lets {
            for i in 0..l.len() {
                if !l.local[i] && l.is_leaf[i] && !l.points_of(i).is_empty() {
                    saw_ghost_with_points = true;
                    for pr in l.points_of(i) {
                        assert!(l.octs[i].contains_point(&pr.pos));
                    }
                }
            }
        }
        assert!(
            saw_ghost_with_points,
            "some ghost leaf with points expected"
        );
    }

    /// The LET invariant of the paper's correctness argument: for every
    /// owned leaf β and every octant α in the *globally built* interaction
    /// region of β, α is present in the LET.
    #[test]
    fn let_contains_interaction_sources() {
        let p = 4;
        let n = 200;
        let q = 6;
        // Build the same global tree sequentially as ground truth.
        let mut all_pts = Vec::new();
        for r in 0..p {
            all_pts.extend(random_points(n, 31 + r as u64, (r * n) as u64));
        }
        let seq = run(1, |c| {
            let t = points_to_octree(c, all_pts.clone(), q);
            build_let(c, &t)
        });
        let global = &seq[0];
        let lets = build(p, n, q);

        for l in &lets {
            for &bi in &l.owned_indices() {
                let beta = l.octs[bi];
                // All global-tree octants adjacent to β (U/W/X sources are
                // always adjacent to β or to its parent; V sources are
                // children of parent's colleagues). Check the V condition
                // and plain adjacency as a superset probe.
                if let Some(par) = beta.parent() {
                    for c in par.colleagues_and_self() {
                        for ch in c.children() {
                            if global.find(&ch).is_some() {
                                assert!(
                                    l.find(&ch).is_some(),
                                    "V-candidate {ch:?} of owned leaf {beta:?} missing"
                                );
                            }
                        }
                    }
                }
                for (gi, ga) in global.octs.iter().enumerate() {
                    if global.is_leaf[gi] && ga.is_adjacent(&beta) {
                        assert!(
                            l.find(ga).is_some(),
                            "adjacent leaf {ga:?} of owned leaf {beta:?} missing"
                        );
                    }
                }
            }
        }
    }
}
