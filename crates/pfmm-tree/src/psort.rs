//! Multithreaded stable LSD radix sort on `(Morton rank, gid)`.
//!
//! The paper reports the parallel sort as the dominant setup cost (15 of
//! 27 seconds at 65,536 ranks); within a rank the seed implementation
//! spent that time in `sort_unstable_by_key(|r| (r.key_rank(), r.gid))`,
//! which re-derives the 90-bit Morton rank from the coordinates on
//! *every comparison*. This module replaces the local sort with a
//! least-significant-digit radix sort over the 160-bit composite key
//! `(rank: u128, gid: u64)`: keys are derived once per record, then
//! sorted in digit passes (per-thread histogram, exclusive prefix sum,
//! stable scatter). Large arrays fuse adjacent active bytes into 16-bit
//! digits, halving the pass count; small ones keep 8-bit digits, whose
//! 256-bin bookkeeping amortizes at any size.
//!
//! # Determinism
//!
//! Point gids are globally unique, so the composite key is unique per
//! record and *any* correct sort — stable or not — produces the same
//! permutation as the serial `sort_unstable_by_key`. LSD radix is
//! additionally stable by construction (each pass scatters chunk
//! fragments in input order at per-(thread, digit) offsets), so the
//! equality holds byte-for-byte regardless of worker count; the
//! property tests in this module pin it on 1/2/8 threads against
//! random, duplicate-key, and coincident-point inputs.
//!
//! # Pass skipping
//!
//! The composite key spans 20 bytes, but `rank < 8^MAX_DEPTH = 2^90`
//! zeroes the top bytes and real inputs rarely vary in more than a few
//! gid bytes. One AND/OR reduction over the keys (folded into the
//! key-derivation pass) detects bytes on which all records agree; those
//! passes are skipped entirely, and the surviving ~12–15 active bytes
//! fuse pairwise into ~6–8 scatter passes on large arrays.

use crate::par::{chunk_cuts, SetupPar};
use crate::point::PointRec;

/// One sortable record: the composite key plus the index of the payload
/// record it came from (payloads are gathered once at the end, so the
/// digit passes move 32-byte entries instead of 56-byte `PointRec`s).
#[derive(Clone, Copy, Default)]
struct Ent {
    rank: u128,
    gid: u64,
    idx: u32,
}

impl Ent {
    /// Composite-key byte `b`, little-endian: bytes 0..8 are the gid
    /// (least significant field), bytes 8..24 the rank.
    #[inline(always)]
    fn byte(&self, b: usize) -> usize {
        if b < 8 {
            ((self.gid >> (8 * b)) & 0xFF) as usize
        } else {
            ((self.rank >> (8 * (b - 8))) & 0xFF) as usize
        }
    }

    /// Digit value for one pass.
    #[inline(always)]
    fn digit(&self, d: DigitSpec) -> usize {
        match d.hi {
            None => self.byte(d.lo),
            Some(h) => self.byte(d.lo) | (self.byte(h) << 8),
        }
    }
}

/// One LSD pass: a single active key byte, or two fused into a 16-bit
/// digit (`hi` the more significant). Fusing *active* bytes — even
/// non-adjacent ones — is sound: constant bytes order nothing, and the
/// passes still consume the varying bytes least-significant first.
#[derive(Clone, Copy)]
struct DigitSpec {
    lo: usize,
    hi: Option<usize>,
}

impl DigitSpec {
    fn bins(self) -> usize {
        if self.hi.is_some() {
            1 << 16
        } else {
            1 << 8
        }
    }
}

/// Below this many records the 65,536-bin histogram/prefix bookkeeping
/// of fused digits outweighs the saved passes; use 8-bit digits.
const PAIR_MIN: usize = 1 << 16;

/// Pass plan over the active bytes, least significant first.
fn digit_plan(active: &[usize], n: usize) -> Vec<DigitSpec> {
    if n < PAIR_MIN {
        return active
            .iter()
            .map(|&b| DigitSpec { lo: b, hi: None })
            .collect();
    }
    active
        .chunks(2)
        .map(|c| DigitSpec {
            lo: c[0],
            hi: c.get(1).copied(),
        })
        .collect()
}

/// Total composite-key bytes: 8 gid + 16 rank (the top rank bytes are
/// always skipped via the AND/OR reduction since rank < 2^90).
const KEY_BYTES: usize = 24;

/// Below this many records the scoped-thread setup costs more than the
/// sort; fall back to a single-threaded pass structure.
const PAR_MIN: usize = 1 << 14;

/// Sort points by `(key_rank(), gid)` — bitwise the same permutation as
/// `pts.sort_unstable_by_key(|r| (r.key_rank(), r.gid))`, which is what
/// [`SetupPar::Serial`] runs.
pub fn sort_points(par: SetupPar, mut pts: Vec<PointRec>) -> Vec<PointRec> {
    match par {
        SetupPar::Serial => {
            pts.sort_unstable_by_key(|r| (r.key_rank(), r.gid));
            pts
        }
        SetupPar::Threads(t) => {
            let ents = build_ents(t, &pts, |r| r.key_rank());
            gather(pts, radix_sort(t, ents))
        }
    }
}

/// Sort pre-keyed records by `(key, gid)` — the bitonic backend derives
/// Morton ranks up front for its compare-split network, so the local
/// sort receives `(rank, record)` pairs. Serial runs the original
/// `sort_unstable_by_key(|(k, r)| (*k, r.gid))`.
pub fn sort_keyed(par: SetupPar, mut recs: Vec<(u128, PointRec)>) -> Vec<(u128, PointRec)> {
    match par {
        SetupPar::Serial => {
            recs.sort_unstable_by_key(|(k, r)| (*k, r.gid));
            recs
        }
        SetupPar::Threads(t) => {
            let ents = build_ents(t, &recs, |&(k, _)| k);
            gather(recs, radix_sort(t, ents))
        }
    }
}

/// Derive each record's Morton rank in parallel (the derivation walks
/// 30 levels of bit interleaving per point — the expensive part the
/// serial comparison sort repeats O(n log n) times).
pub fn ranks_of(par: SetupPar, pts: &[PointRec]) -> Vec<u128> {
    let t = par.threads();
    if t <= 1 || pts.len() < PAR_MIN {
        return pts.iter().map(|r| r.key_rank()).collect();
    }
    let cuts = chunk_cuts(t, pts.len());
    let mut out = vec![0u128; pts.len()];
    let mut tasks: Vec<(&[PointRec], &mut [u128])> = Vec::new();
    let mut rest = &mut out[..];
    for w in cuts.windows(2) {
        let (window, tail) = rest.split_at_mut(w[1] - w[0]);
        rest = tail;
        tasks.push((&pts[w[0]..w[1]], window));
    }
    crossbeam::thread::scope(|scope| {
        for (chunk, window) in tasks {
            scope.spawn(move |_| {
                for (r, o) in chunk.iter().zip(window.iter_mut()) {
                    *o = r.key_rank();
                }
            });
        }
    })
    .expect("ranks_of scope");
    out
}

trait GidOf {
    fn gid_of(&self) -> u64;
}
impl GidOf for PointRec {
    fn gid_of(&self) -> u64 {
        self.gid
    }
}
impl GidOf for (u128, PointRec) {
    fn gid_of(&self) -> u64 {
        self.1.gid
    }
}

/// Key-derivation pass: one `Ent` per record, chunk-parallel.
fn build_ents<R, K>(threads: usize, recs: &[R], key: K) -> Vec<Ent>
where
    R: GidOf + Sync,
    K: Fn(&R) -> u128 + Sync,
{
    let n = recs.len();
    let fill = |chunk: &[R], out: &mut [Ent], base: usize| {
        for (i, (r, e)) in chunk.iter().zip(out.iter_mut()).enumerate() {
            *e = Ent {
                rank: key(r),
                gid: r.gid_of(),
                idx: (base + i) as u32,
            };
        }
    };
    let mut ents = vec![Ent::default(); n];
    if threads <= 1 || n < PAR_MIN {
        fill(recs, &mut ents, 0);
        return ents;
    }
    let cuts = chunk_cuts(threads, n);
    let mut tasks: Vec<(&[R], &mut [Ent], usize)> = Vec::new();
    let mut rest = &mut ents[..];
    for w in cuts.windows(2) {
        let (window, tail) = rest.split_at_mut(w[1] - w[0]);
        rest = tail;
        tasks.push((&recs[w[0]..w[1]], window, w[0]));
    }
    let fill = &fill;
    crossbeam::thread::scope(|scope| {
        for (chunk, window, base) in tasks {
            scope.spawn(move |_| fill(chunk, window, base));
        }
    })
    .expect("build_ents scope");
    ents
}

/// Bytes on which the records actually differ, least significant first:
/// byte `b` needs a pass iff the AND and OR of all composite keys
/// disagree on it.
fn active_bytes(ents: &[Ent]) -> Vec<usize> {
    let mut and = (u128::MAX, u64::MAX);
    let mut or = (0u128, 0u64);
    for e in ents {
        and = (and.0 & e.rank, and.1 & e.gid);
        or = (or.0 | e.rank, or.1 | e.gid);
    }
    let (dr, dg) = (and.0 ^ or.0, and.1 ^ or.1);
    (0..KEY_BYTES)
        .filter(|&b| {
            if b < 8 {
                (dg >> (8 * b)) & 0xFF != 0
            } else {
                (dr >> (8 * (b - 8))) & 0xFF != 0
            }
        })
        .collect()
}

/// Stable LSD radix sort of the entry array; returns the sorted entries.
fn radix_sort(threads: usize, mut ents: Vec<Ent>) -> Vec<Ent> {
    let n = ents.len();
    if n < 2 {
        return ents;
    }
    let digits = digit_plan(&active_bytes(&ents), n);
    let mut spare = vec![Ent::default(); n];
    if threads <= 1 || n < PAR_MIN {
        for &d in &digits {
            serial_pass(d, &ents, &mut spare);
            std::mem::swap(&mut ents, &mut spare);
        }
        return ents;
    }
    let cuts = chunk_cuts(threads, n);
    for &d in &digits {
        parallel_pass(d, &cuts, &ents, &mut spare);
        std::mem::swap(&mut ents, &mut spare);
    }
    ents
}

/// One serial counting pass on digit `spec`: histogram, exclusive
/// prefix, stable scatter `src -> dst`.
fn serial_pass(spec: DigitSpec, src: &[Ent], dst: &mut [Ent]) {
    let bins = spec.bins();
    let mut hist = vec![0usize; bins];
    for e in src {
        hist[e.digit(spec)] += 1;
    }
    let mut off = hist;
    let mut acc = 0;
    for o in off.iter_mut() {
        let count = *o;
        *o = acc;
        acc += count;
    }
    for e in src {
        let d = e.digit(spec);
        dst[off[d]] = *e;
        off[d] += 1;
    }
}

/// Scatter destination shared across workers. Each worker writes the
/// disjoint index set carved out by the per-(thread, digit) offsets, so
/// no two threads ever touch the same element (see the offset
/// construction in [`parallel_pass`]).
struct ScatterOut(*mut Ent);
unsafe impl Send for ScatterOut {}
unsafe impl Sync for ScatterOut {}

/// One parallel counting pass on digit `spec` over fixed contiguous
/// chunks.
///
/// Phase 1 (chunk-parallel): per-thread histograms.
/// Phase 2 (serial, O(bins·t)): exclusive prefix in (digit, thread)
/// order, giving worker `t` its starting offset for each digit —
/// `global digit base + counts of that digit in chunks < t`.
/// Phase 3 (chunk-parallel): each worker scatters its chunk in input
/// order at those offsets. Within a digit, earlier chunks land first
/// and each chunk's records stay in order: the pass is stable, and the
/// output is identical to [`serial_pass`] on the same input.
fn parallel_pass(spec: DigitSpec, cuts: &[usize], src: &[Ent], dst: &mut [Ent]) {
    let bins = spec.bins();
    let t = cuts.len() - 1;
    // Phase 1: per-chunk histograms.
    let hists: Vec<Vec<usize>> = {
        let mut slots: Vec<Vec<usize>> = vec![vec![0; bins]; t];
        crossbeam::thread::scope(|scope| {
            let mut rest = &mut slots[..];
            for w in cuts.windows(2) {
                let (slot, tail) = rest.split_at_mut(1);
                rest = tail;
                let chunk = &src[w[0]..w[1]];
                let hist = &mut slot[0];
                scope.spawn(move |_| {
                    for e in chunk {
                        hist[e.digit(spec)] += 1;
                    }
                });
            }
        })
        .expect("radix histogram scope");
        slots
    };
    // Phase 2: starting offset of (digit d, chunk k) = sum over all
    // (d', k') with d' < d, plus chunks k' < k within d.
    let mut offs: Vec<Vec<usize>> = vec![vec![0; bins]; t];
    let mut acc = 0usize;
    for d in 0..bins {
        for k in 0..t {
            offs[k][d] = acc;
            acc += hists[k][d];
        }
    }
    debug_assert_eq!(acc, src.len());
    // Phase 3: stable scatter. The (digit, chunk) offset runs partition
    // 0..n, so each destination index is written by exactly one worker.
    let out = ScatterOut(dst.as_mut_ptr());
    let out = &out;
    crossbeam::thread::scope(|scope| {
        for (off, w) in offs.into_iter().zip(cuts.windows(2)) {
            let chunk = &src[w[0]..w[1]];
            let mut off = off;
            scope.spawn(move |_| {
                for e in chunk {
                    let d = e.digit(spec);
                    // SAFETY: off starts at this chunk's disjoint
                    // per-digit ranges (phase 2 partitions 0..n across
                    // (digit, chunk) pairs) and each write advances the
                    // cursor, so every index is written exactly once.
                    unsafe { *out.0.add(off[d]) = *e };
                    off[d] += 1;
                }
            });
        }
    })
    .expect("radix scatter scope");
}

/// Apply the sorted permutation to the payload records.
fn gather<R: Copy>(recs: Vec<R>, ents: Vec<Ent>) -> Vec<R> {
    ents.into_iter().map(|e| recs[e.idx as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<PointRec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                PointRec::scalar(
                    [
                        rng.random::<f64>(),
                        rng.random::<f64>(),
                        rng.random::<f64>(),
                    ],
                    1.0,
                    i as u64,
                )
            })
            .collect()
    }

    /// A handful of coincident clusters: every cluster shares one Morton
    /// key, so the sort is decided by the gid tiebreak.
    fn coincident_points(n: usize, clusters: usize, seed: u64) -> Vec<PointRec> {
        let mut rng = StdRng::seed_from_u64(seed);
        let sites: Vec<[f64; 3]> = (0..clusters)
            .map(|_| {
                [
                    rng.random::<f64>(),
                    rng.random::<f64>(),
                    rng.random::<f64>(),
                ]
            })
            .collect();
        // Shuffled gids: adversarial for stability (descending runs).
        (0..n)
            .map(|i| PointRec::scalar(sites[i % clusters], 1.0, (n - 1 - i) as u64))
            .collect()
    }

    fn serial_reference(mut pts: Vec<PointRec>) -> Vec<PointRec> {
        pts.sort_unstable_by_key(|r| (r.key_rank(), r.gid));
        pts
    }

    fn assert_same(a: &[PointRec], b: &[PointRec]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.gid, y.gid);
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.den, y.den);
        }
    }

    #[test]
    fn radix_matches_serial_permutation_random() {
        for n in [0usize, 1, 2, 100, 5000] {
            let pts = random_points(n, 42 + n as u64);
            let want = serial_reference(pts.clone());
            for threads in [1usize, 2, 8] {
                let got = sort_points(SetupPar::Threads(threads), pts.clone());
                assert_same(&got, &want);
            }
        }
    }

    #[test]
    fn radix_matches_serial_permutation_coincident() {
        for (n, clusters) in [(1000usize, 1usize), (1000, 7), (4096, 64)] {
            let pts = coincident_points(n, clusters, 9);
            let want = serial_reference(pts.clone());
            for threads in [1usize, 2, 8] {
                let got = sort_points(SetupPar::Threads(threads), pts.clone());
                assert_same(&got, &want);
            }
        }
    }

    #[test]
    fn radix_crosses_parallel_threshold() {
        // Above PAR_MIN the chunked histogram/scatter path actually runs.
        let pts = coincident_points(PAR_MIN + 1234, 16, 3);
        let want = serial_reference(pts.clone());
        for threads in [2usize, 8] {
            let got = sort_points(SetupPar::Threads(threads), pts.clone());
            assert_same(&got, &want);
        }
    }

    #[test]
    fn radix_crosses_pair_threshold() {
        // Above PAIR_MIN the active bytes fuse into 16-bit digits.
        let mut pts = random_points(PAIR_MIN + 1000, 11);
        // Splice in coincident runs so the gid tiebreak crosses fused
        // digit boundaries too.
        for (i, p) in pts.iter_mut().enumerate().take(4096) {
            p.pos = [0.125, 0.625, 0.875];
            p.gid = (PAIR_MIN + 4096 - i) as u64;
        }
        let want = serial_reference(pts.clone());
        for threads in [1usize, 8] {
            let got = sort_points(SetupPar::Threads(threads), pts.clone());
            assert_same(&got, &want);
        }
    }

    #[test]
    fn keyed_variant_matches_serial() {
        let pts = coincident_points(3000, 5, 17);
        let keyed: Vec<(u128, PointRec)> = pts.iter().map(|r| (r.key_rank(), *r)).collect();
        let mut want = keyed.clone();
        want.sort_unstable_by_key(|(k, r)| (*k, r.gid));
        for threads in [1usize, 2, 8] {
            let got = sort_keyed(SetupPar::Threads(threads), keyed.clone());
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.0, w.0);
                assert_eq!(g.1.gid, w.1.gid);
            }
        }
    }

    #[test]
    fn serial_mode_is_the_comparison_sort() {
        let pts = random_points(500, 23);
        assert_same(
            &sort_points(SetupPar::Serial, pts.clone()),
            &serial_reference(pts),
        );
    }

    #[test]
    fn ranks_of_matches_per_record_derivation() {
        let pts = random_points(PAR_MIN + 100, 5);
        let want: Vec<u128> = pts.iter().map(|r| r.key_rank()).collect();
        for par in [
            SetupPar::Serial,
            SetupPar::Threads(1),
            SetupPar::Threads(2),
            SetupPar::Threads(8),
        ] {
            assert_eq!(ranks_of(par, &pts), want);
        }
    }

    #[test]
    fn active_bytes_skips_constant_bytes() {
        // All gids equal, ranks equal: nothing active.
        let pts: Vec<PointRec> = (0..10)
            .map(|_| PointRec::scalar([0.25, 0.5, 0.75], 1.0, 7))
            .collect();
        let ents = build_ents(1, &pts, |r| r.key_rank());
        assert!(active_bytes(&ents).is_empty());
        // Distinct gids under 256: exactly byte 0.
        let pts: Vec<PointRec> = (0..10)
            .map(|i| PointRec::scalar([0.25, 0.5, 0.75], 1.0, i as u64))
            .collect();
        let ents = build_ents(1, &pts, |r| r.key_rank());
        assert_eq!(active_bytes(&ents), vec![0]);
    }
}
