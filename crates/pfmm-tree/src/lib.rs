//! Distributed adaptive linear octree, Local Essential Trees, and the
//! U/V/W/X interaction lists (paper §II–III).
//!
//! The pipeline mirrors the paper's tree-construction phase:
//!
//! 1. [`sort::sample_sort_points`] — globally Morton-sort the points so
//!    each rank owns a contiguous chunk (sample sort, the dominant setup
//!    cost in the paper's Table II).
//! 2. [`dtree::points_to_octree`] — each rank refines its region of the
//!    unit cube into leaves with at most `q` points (the distributed
//!    `Points2Octree` of DENDRO).
//! 3. [`lett::build_let`] — add ancestors, exchange ghost octants per
//!    Algorithm 2, producing the Local Essential Tree.
//! 4. [`lists::build_lists`] — construct the U-, V-, W- and X-lists of
//!    Table I for every octant this rank evaluates.
//! 5. [`dtree::repartition_by_weight`] — the work-based load balancing of
//!    §III-B (repartition leaves by interaction-list weight, then rebuild
//!    the LET and lists).
//!
//! Everything works unchanged at `p = 1`, which is how the sequential FMM
//! driver uses it.

pub mod balance;
pub mod bitonic;
pub mod dtree;
pub mod lett;
pub mod lists;
pub mod par;
pub mod point;
pub mod psort;
pub mod sort;
pub mod stats;

pub use balance::{balance_2to1, is_balanced_2to1};
pub use bitonic::{bitonic_sort_points, bitonic_sort_points_with};
pub use dtree::{
    octree_from_sorted, octree_from_sorted_with, points_to_octree, repartition_by_weight, DistTree,
};
pub use lett::{build_let, build_let_with, user_ranks, Let};
pub use lists::{build_lists, build_lists_with, Csr, Lists};
pub use par::SetupPar;
pub use point::PointRec;
pub use sort::{sample_sort_points, sample_sort_points_with};
pub use stats::{ListStats, TreeStats};
