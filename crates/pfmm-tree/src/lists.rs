//! U-, V-, W- and X-list construction (Table I of the paper).
//!
//! For every *local* octant β (owned leaf or ancestor of one) the lists
//! collect the octants coupled to β in Algorithm 1:
//!
//! - `U(β)` (leaves only): leaf octants adjacent to β, including β —
//!   direct near-field interactions.
//! - `V(β)`: children of the colleagues of `P(β)` not adjacent to β — the
//!   far-field multipole-to-local translations.
//! - `W(β)` (leaves only): descendants α of colleagues of β with `P(α)`
//!   adjacent to β but α not adjacent — their multipole expansions are
//!   valid at β's targets.
//! - `X(β)`: the duals of W (α with β ∈ W(α)) — their sources are
//!   evaluated directly onto β's downward check surface.
//!
//! Construction is search-free on the hot path: a one-pass scaffold over
//! the Morton-sorted LET array (subtree extents, present parents, and
//! per-level colleague rows built top-down) turns every list into child
//! walks and colleague-row scans, so no box re-derives Morton ranks or
//! binary-searches the LET per candidate. No communication is needed
//! (everything required is already in the LET, per Algorithm 2).

use crate::lett::Let;
use crate::par::{par_map_n, SetupPar};
use pfmm_morton::{MortonKey, MAX_DEPTH};

/// Sort a collected row and drop duplicates in place — the closing step
/// of every list/LET row assembly (the U/X descents and the LET's
/// ancestor and user-rank collections can visit an octant through more
/// than one path; V/W rows are duplicate-free and pay only the no-op
/// scan).
pub fn sorted_dedup<T: Ord>(out: &mut Vec<T>) {
    out.sort_unstable();
    out.dedup();
}

/// Compressed sparse rows of `u32` octant indices.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    off: Vec<u32>,
    items: Vec<u32>,
}

impl Csr {
    /// Build from per-row item vectors.
    pub fn from_rows(rows: Vec<Vec<u32>>) -> Csr {
        let mut off = Vec::with_capacity(rows.len() + 1);
        off.push(0u32);
        let mut items = Vec::new();
        for r in rows {
            items.extend(r);
            off.push(items.len() as u32);
        }
        Csr { off, items }
    }

    /// Items of row `i`.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.items[self.off[i] as usize..self.off[i + 1] as usize]
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.off.len() - 1
    }

    /// Total number of stored items.
    pub fn total(&self) -> usize {
        self.items.len()
    }

    /// Heap bytes held by the offsets and items.
    pub fn memory_bytes(&self) -> usize {
        (self.off.len() + self.items.len()) * std::mem::size_of::<u32>()
    }
}

/// The four interaction lists, rows aligned with `Let::octs`.
///
/// Rows are populated only for local octants (U/W additionally only for
/// owned leaves); other rows are empty.
#[derive(Clone, Debug)]
pub struct Lists {
    /// Direct-interaction sources (includes β itself).
    pub u: Csr,
    /// Multipole-to-local sources.
    pub v: Csr,
    /// Multipole-to-target sources.
    pub w: Csr,
    /// Source-to-local sources.
    pub x: Csr,
}

impl Lists {
    /// Sum of list lengths for octant `i` (used in work estimates).
    pub fn degree(&self, i: usize) -> usize {
        self.u.row(i).len() + self.v.row(i).len() + self.w.row(i).len() + self.x.row(i).len()
    }

    /// Heap bytes held by the four CSRs.
    pub fn memory_bytes(&self) -> usize {
        self.u.memory_bytes()
            + self.v.memory_bytes()
            + self.w.memory_bytes()
            + self.x.memory_bytes()
    }
}

/// Minimum level present in the LET (bounds the X-list ancestor walk).
fn min_level(l: &Let) -> u32 {
    l.keys.iter().map(|&k| (k & 31) as u32).min().unwrap_or(0)
}

/// Level of octant `i`, read off the packed LET key.
#[inline]
fn level_of(l: &Let, i: usize) -> u32 {
    (l.keys[i] & 31) as u32
}

/// Last finest-grid rank covered by octant `i` (inclusive).
#[inline]
fn rank_end_of(l: &Let, i: usize) -> u128 {
    (l.keys[i] >> 5) + ((1u128 << (3 * (MAX_DEPTH - level_of(l, i)))) - 1)
}

/// Construction scaffold over the LET's linear octree, built in one
/// ascending pass plus a top-down level sweep. With it, every list row
/// reduces to child walks (`end` hops) and colleague-row scans — no
/// per-candidate binary search, no rank re-derivation.
///
/// The LET is ancestor-closed: an octant's user area (the colleagues of
/// its parent, see `user_ranks`) nests inside its parent's, so every
/// rank that receives an octant also receives all its ancestors, and the
/// local set contains its own ancestors by construction. Hence every
/// non-root octant's parent is present and `parent` chains reach the
/// root.
struct Scaffold {
    /// First index past octant `i`'s descendants (subtree end).
    end: Vec<u32>,
    /// Index of the present parent; `u32::MAX` at the root.
    parent: Vec<u32>,
    /// Colleague rows — same-level present octants touching `i`,
    /// ascending — populated for local octants (the only ones whose rows
    /// the lists read).
    coll: Csr,
}

impl Scaffold {
    /// Exact-level children of octant `i`: hop subtree extents, keeping
    /// entries one level below `i` (skipping would-be orphan tops, which
    /// an ancestor-closed LET does not contain).
    #[inline]
    fn children<F: FnMut(usize)>(&self, l: &Let, i: usize, mut f: F) {
        let lev = level_of(l, i) + 1;
        let mut c = i + 1;
        let e = self.end[i] as usize;
        while c < e {
            if level_of(l, c) == lev {
                f(c);
            }
            c = self.end[c] as usize;
        }
    }
}

/// Per-level batches below this size stay on the calling thread — the
/// scoped-spawn overhead would exceed the row work.
const COLL_PAR_MIN: usize = 512;

fn build_scaffold(l: &Let, par: SetupPar) -> Scaffold {
    let n = l.len();
    let mut end = vec![n as u32; n];
    let mut parent = vec![u32::MAX; n];
    let mut stack: Vec<u32> = Vec::new();
    for (i, par_slot) in parent.iter_mut().enumerate() {
        let rk = l.keys[i] >> 5;
        while let Some(&t) = stack.last() {
            if rank_end_of(l, t as usize) < rk {
                end[t as usize] = i as u32;
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&t) = stack.last() {
            // The deepest still-open octant is the nearest present
            // ancestor; ancestor-closure makes it the direct parent.
            if level_of(l, t as usize) + 1 == level_of(l, i) {
                *par_slot = t;
            }
        }
        debug_assert!(
            *par_slot != u32::MAX || level_of(l, i) == 0,
            "LET not ancestor-closed at octant {i}"
        );
        stack.push(i as u32);
    }

    // Colleague rows, top-down: the colleagues of β are among the
    // children of the colleagues of P(β) and β's own siblings, so each
    // level's rows come from the previous level's with child walks and
    // `touches` filters only. Levels are swept in order; rows within a
    // level are independent and mapped in parallel.
    let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); MAX_DEPTH as usize + 1];
    for i in 0..n {
        if l.local[i] {
            by_level[level_of(l, i) as usize].push(i as u32);
        }
    }
    let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
    let build_row = |rows: &[Vec<u32>], end: &[u32], i: usize| -> Vec<u32> {
        let beta = l.octs[i];
        let lev = level_of(l, i);
        let mut row = Vec::new();
        let pi = parent[i];
        if pi == u32::MAX {
            // A top octant inherits nothing. The root has no colleagues;
            // a non-root top cannot occur in an ancestor-closed LET.
            debug_assert_eq!(lev, 0);
            return row;
        }
        for &j in rows[pi as usize].iter().chain(std::iter::once(&pi)) {
            let j = j as usize;
            let mut c = j + 1;
            let e = end[j] as usize;
            while c < e {
                if c != i && level_of(l, c) == lev && l.octs[c].touches(&beta) {
                    row.push(c as u32);
                }
                c = end[c] as usize;
            }
        }
        row.sort_unstable();
        row
    };
    for bucket in by_level.iter_mut() {
        let idxs = std::mem::take(bucket);
        if idxs.is_empty() {
            continue;
        }
        let built: Vec<Vec<u32>> = if par.threads() > 1 && idxs.len() >= COLL_PAR_MIN {
            par_map_n(par.threads(), idxs.len(), |k| {
                build_row(&rows, &end, idxs[k] as usize)
            })
        } else {
            idxs.iter()
                .map(|&i| build_row(&rows, &end, i as usize))
                .collect()
        };
        for (&i, row) in idxs.iter().zip(built) {
            rows[i as usize] = row;
        }
    }

    Scaffold {
        end,
        parent,
        coll: Csr::from_rows(rows),
    }
}

/// Build all four lists for the local octants of the LET.
pub fn build_lists(l: &Let) -> Lists {
    build_lists_with(l, SetupPar::Serial)
}

/// [`build_lists`] with a parallelism budget: each octant's four rows
/// depend only on the (read-only) LET and scaffold, so rows are mapped
/// in parallel and reassembled in octant order — the CSRs are identical
/// to the serial build's, byte for byte.
pub fn build_lists_with(l: &Let, par: SetupPar) -> Lists {
    let n = l.len();
    let lmin = min_level(l);
    let sc = build_scaffold(l, par);

    type Rows = (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>);
    let rows: Vec<Rows> = par_map_n(par.threads(), n, |bi| {
        if !l.local[bi] {
            return Default::default();
        }
        let v = v_list(l, &sc, bi);
        let x = x_list(l, &sc, bi, lmin);
        let (u, w) = if l.owned[bi] {
            debug_assert!(l.is_leaf[bi]);
            (u_list(l, &sc, bi), w_list(l, &sc, bi))
        } else {
            (Vec::new(), Vec::new())
        };
        (u, v, w, x)
    });

    let mut u_rows = Vec::with_capacity(n);
    let mut v_rows = Vec::with_capacity(n);
    let mut w_rows = Vec::with_capacity(n);
    let mut x_rows = Vec::with_capacity(n);
    for (u, v, w, x) in rows {
        u_rows.push(u);
        v_rows.push(v);
        w_rows.push(w);
        x_rows.push(x);
    }
    Lists {
        u: Csr::from_rows(u_rows),
        v: Csr::from_rows(v_rows),
        w: Csr::from_rows(w_rows),
        x: Csr::from_rows(x_rows),
    }
}

/// Is `k` among the row's octants? Rows are index-ascending, hence
/// key-ascending: a short binary search on the packed keys.
#[inline]
fn row_contains(l: &Let, row: &[u32], k: &MortonKey) -> bool {
    let sk = k.sort_key();
    row.binary_search_by(|&i| l.keys[i as usize].cmp(&sk))
        .is_ok()
}

/// U(β): all leaves adjacent to β, plus β itself. β's colleague row
/// covers every direction with a same-level octant (leaf colleagues join
/// directly, finer ones by descent); directions without one are covered
/// by a coarser leaf found by the ancestor walk.
fn u_list(l: &Let, sc: &Scaffold, bi: usize) -> Vec<u32> {
    let beta = l.octs[bi];
    let mut out = vec![bi as u32];
    let row = sc.coll.row(bi);
    for &ci in row {
        let c = ci as usize;
        if l.is_leaf[c] {
            if l.octs[c].is_adjacent(&beta) {
                out.push(ci);
            }
        } else {
            descend_adjacent_leaves(l, sc, &beta, c, &mut out);
        }
    }
    let cols = beta.colleagues();
    if row.len() != cols.len() {
        for nb in &cols {
            if row_contains(l, row, nb) {
                continue;
            }
            let (s, e) = l.subtree_range(nb);
            if s < e {
                // Finer structure under an absent neighbor — walk its
                // present tops (defensive; an ancestor-closed LET never
                // produces this shape).
                let mut t = s;
                while t < e {
                    descend_adjacent_leaves(l, sc, &beta, t, &mut out);
                    t = sc.end[t] as usize;
                }
            } else {
                // Neighbor volume covered by a coarser leaf.
                let mut a = *nb;
                while let Some(par) = a.parent() {
                    if let Some(i) = l.find(&par) {
                        if l.is_leaf[i] {
                            out.push(i as u32);
                        }
                        break;
                    }
                    a = par;
                }
            }
        }
    }
    sorted_dedup(&mut out);
    out
}

/// Collect leaves within the subtree of present octant `i` that are
/// adjacent to β, pruning branches whose closure misses β.
fn descend_adjacent_leaves(l: &Let, sc: &Scaffold, beta: &MortonKey, i: usize, out: &mut Vec<u32>) {
    if !l.octs[i].touches(beta) {
        return;
    }
    if l.is_leaf[i] {
        if l.octs[i].is_adjacent(beta) {
            out.push(i as u32);
        }
        return;
    }
    let mut c = i + 1;
    let e = sc.end[i] as usize;
    while c < e {
        descend_adjacent_leaves(l, sc, beta, c, out);
        c = sc.end[c] as usize;
    }
}

/// V(β): children of colleagues of P(β) that are present and not adjacent
/// to β.
fn v_list(l: &Let, sc: &Scaffold, bi: usize) -> Vec<u32> {
    let beta = l.octs[bi];
    if sc.parent[bi] == u32::MAX {
        return Vec::new();
    }
    let lev = level_of(l, bi);
    let mut out = Vec::new();
    for &j in sc.coll.row(sc.parent[bi] as usize) {
        let j = j as usize;
        let mut c = j + 1;
        let e = sc.end[j] as usize;
        while c < e {
            if level_of(l, c) == lev && !l.octs[c].is_adjacent(&beta) {
                out.push(c as u32);
            }
            c = sc.end[c] as usize;
        }
    }
    sorted_dedup(&mut out);
    out
}

/// W(β): descend through β's colleagues; emit children that lose
/// adjacency while their parent keeps it.
fn w_list(l: &Let, sc: &Scaffold, bi: usize) -> Vec<u32> {
    let beta = l.octs[bi];
    let mut out = Vec::new();
    for &ci in sc.coll.row(bi) {
        if !l.is_leaf[ci as usize] {
            w_descend(l, sc, &beta, ci as usize, &mut out);
        }
    }
    sorted_dedup(&mut out);
    out
}

/// Invariant: `o` is adjacent to β and is a non-leaf present in the LET.
fn w_descend(l: &Let, sc: &Scaffold, beta: &MortonKey, o: usize, out: &mut Vec<u32>) {
    sc.children(l, o, |i| {
        if l.octs[i].is_adjacent(beta) {
            if !l.is_leaf[i] {
                w_descend(l, sc, beta, i, out);
            }
        } else {
            // P(ch) = o is adjacent, ch is not: a W member (leaf or not).
            out.push(i as u32);
        }
    });
}

/// X(β): leaves α coarser than β with β inside a colleague of α, `P(β)`
/// adjacent to α, and β not adjacent to α (the dual of W). β's present
/// ancestors are exactly its `parent` chain, and the same-level octants
/// adjacent to each ancestor are its colleague row.
fn x_list(l: &Let, sc: &Scaffold, bi: usize, lmin: u32) -> Vec<u32> {
    let beta = l.octs[bi];
    let Some(par) = beta.parent() else {
        return Vec::new();
    };
    let floor = lmin.max(1);
    let mut out = Vec::new();
    let mut a = bi;
    while sc.parent[a] != u32::MAX {
        let pi = sc.parent[a] as usize;
        if level_of(l, pi) < floor {
            break;
        }
        for &ai in sc.coll.row(pi) {
            if !l.is_leaf[ai as usize] {
                continue;
            }
            let alpha = l.octs[ai as usize];
            if par.is_adjacent(&alpha) && !beta.is_adjacent(&alpha) {
                out.push(ai);
            }
        }
        a = pi;
    }
    sorted_dedup(&mut out);
    out
}

/// Work estimate per owned leaf for the load balancer (§III-B): direct
/// U-list pair counts plus weighted list degrees for the translation work.
///
/// Rows of `weights` align with `Let::owned_indices()` (i.e. with the
/// owning `DistTree::leaves`).
pub fn leaf_weights(l: &Let, lists: &Lists) -> Vec<f64> {
    // Relative per-item costs, calibrated loosely against the paper's
    // per-phase flop shares (Table II): direct pairs dominate, V-list
    // translations cost a grid convolution each, W/X a dense matvec each.
    const C_V: f64 = 200.0;
    const C_WX: f64 = 100.0;
    let mut out = Vec::new();
    for bi in l.owned_indices() {
        let n_beta = l.points_of(bi).len() as f64;
        let mut w = 0.0;
        for &ai in lists.u.row(bi) {
            w += n_beta * l.points_of(ai as usize).len() as f64;
        }
        w += C_V * lists.v.row(bi).len() as f64;
        w += C_WX * (lists.w.row(bi).len() + lists.x.row(bi).len()) as f64;
        out.push(w);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtree::points_to_octree;
    use crate::point::PointRec;
    use pfmm_mpisim::run;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<PointRec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                PointRec::scalar(
                    [
                        rng.random::<f64>(),
                        rng.random::<f64>(),
                        rng.random::<f64>(),
                    ],
                    1.0,
                    i as u64,
                )
            })
            .collect()
    }

    fn ellipsoid_points(n: usize, seed: u64) -> Vec<PointRec> {
        // Nonuniform: points on a 1:1:4-ish ellipsoid surface (the paper's
        // nonuniform distribution), scaled into the unit cube.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let theta = rng.random::<f64>() * std::f64::consts::PI;
                let phi = rng.random::<f64>() * 2.0 * std::f64::consts::PI;
                let x = 0.5 + 0.12 * theta.sin() * phi.cos();
                let y = 0.5 + 0.12 * theta.sin() * phi.sin();
                let z = 0.5 + 0.48 * theta.cos();
                PointRec::scalar([x, y, z.clamp(0.0, 0.999)], 1.0, i as u64)
            })
            .collect()
    }

    fn seq_let(pts: Vec<PointRec>, q: usize) -> Let {
        run(1, |c| {
            crate::lett::build_let(c, &points_to_octree(c, pts.clone(), q))
        })
        .pop()
        .expect("one rank")
    }

    /// Quantifier-level reference implementation of Table I.
    struct Brute<'a> {
        l: &'a Let,
    }

    impl<'a> Brute<'a> {
        fn u(&self, bi: usize) -> Vec<u32> {
            let beta = self.l.octs[bi];
            let mut out: Vec<u32> = (0..self.l.len())
                .filter(|&ai| {
                    self.l.is_leaf[ai] && (ai == bi || self.l.octs[ai].is_adjacent(&beta))
                })
                .map(|ai| ai as u32)
                .collect();
            out.sort_unstable();
            out
        }

        fn v(&self, bi: usize) -> Vec<u32> {
            let beta = self.l.octs[bi];
            let Some(pb) = beta.parent() else {
                return Vec::new();
            };
            (0..self.l.len())
                .filter(|&ai| {
                    let a = self.l.octs[ai];
                    a.level() == beta.level()
                        && a != beta
                        && a.parent()
                            .map(|pa| pa != pb && pa.is_adjacent(&pb))
                            .unwrap_or(false)
                        && !a.is_adjacent(&beta)
                })
                .map(|ai| ai as u32)
                .collect()
        }

        fn w(&self, bi: usize) -> Vec<u32> {
            let beta = self.l.octs[bi];
            let colleagues = beta.colleagues();
            (0..self.l.len())
                .filter(|&ai| {
                    let a = self.l.octs[ai];
                    colleagues.iter().any(|c| c.is_ancestor_of(&a))
                        && !a.is_adjacent(&beta)
                        && a.parent().map(|pa| pa.is_adjacent(&beta)).unwrap_or(false)
                })
                .map(|ai| ai as u32)
                .collect()
        }

        fn x(&self, bi: usize) -> Vec<u32> {
            // α ∈ X(β) iff β ∈ W(α), α a leaf.
            let beta_key = self.l.octs[bi];
            (0..self.l.len())
                .filter(|&ai| {
                    if !self.l.is_leaf[ai] {
                        return false;
                    }
                    let alpha = self.l.octs[ai];
                    let in_w_of_alpha = alpha
                        .colleagues()
                        .iter()
                        .any(|c| c.is_ancestor_of(&beta_key))
                        && !beta_key.is_adjacent(&alpha)
                        && beta_key
                            .parent()
                            .map(|pb| pb.is_adjacent(&alpha))
                            .unwrap_or(false);
                    in_w_of_alpha
                })
                .map(|ai| ai as u32)
                .collect()
        }
    }

    fn check_against_brute(l: &Let) {
        let lists = build_lists(l);
        let brute = Brute { l };
        for bi in 0..l.len() {
            if !l.local[bi] {
                continue;
            }
            assert_eq!(
                lists.v.row(bi),
                brute.v(bi).as_slice(),
                "V({:?})",
                l.octs[bi]
            );
            assert_eq!(
                lists.x.row(bi),
                brute.x(bi).as_slice(),
                "X({:?})",
                l.octs[bi]
            );
            if l.owned[bi] {
                assert_eq!(
                    lists.u.row(bi),
                    brute.u(bi).as_slice(),
                    "U({:?})",
                    l.octs[bi]
                );
                assert_eq!(
                    lists.w.row(bi),
                    brute.w(bi).as_slice(),
                    "W({:?})",
                    l.octs[bi]
                );
            }
        }
    }

    #[test]
    fn lists_match_brute_force_uniform() {
        check_against_brute(&seq_let(random_points(300, 17), 8));
    }

    #[test]
    fn lists_match_brute_force_small_q() {
        check_against_brute(&seq_let(random_points(150, 23), 1));
    }

    #[test]
    fn lists_match_brute_force_nonuniform() {
        check_against_brute(&seq_let(ellipsoid_points(300, 5), 6));
    }

    #[test]
    fn u_and_v_are_symmetric() {
        let l = seq_let(random_points(250, 29), 4);
        let lists = build_lists(&l);
        for bi in 0..l.len() {
            for &ai in lists.u.row(bi) {
                assert!(
                    lists.u.row(ai as usize).contains(&(bi as u32)),
                    "U symmetry violated"
                );
            }
            for &ai in lists.v.row(bi) {
                assert!(
                    lists.v.row(ai as usize).contains(&(bi as u32)),
                    "V symmetry violated"
                );
            }
        }
    }

    #[test]
    fn w_and_x_are_dual() {
        let l = seq_let(random_points(250, 37), 4);
        let lists = build_lists(&l);
        for bi in 0..l.len() {
            for &ai in lists.w.row(bi) {
                assert!(
                    lists.x.row(ai as usize).contains(&(bi as u32)),
                    "β ∈ W ⇒ dual X missing"
                );
            }
            for &ai in lists.x.row(bi) {
                assert!(
                    lists.w.row(ai as usize).contains(&(bi as u32)),
                    "β ∈ X ⇒ dual W missing"
                );
            }
        }
    }

    /// Every pair of leaves must interact exactly once: either directly
    /// (U) or through exactly one V/W/X coupling on the paths to their
    /// ancestors. This is the FMM's partition-of-unity over the far field.
    #[test]
    fn interaction_partition_of_unity() {
        let l = seq_let(random_points(120, 41), 3);
        let lists = build_lists(&l);
        let leaf_idx: Vec<usize> = (0..l.len()).filter(|&i| l.is_leaf[i]).collect();
        for &ti in &leaf_idx {
            for &si in &leaf_idx {
                let mut count = 0usize;
                // U: direct.
                if lists.u.row(ti).contains(&(si as u32)) {
                    count += 1;
                }
                // V: some ancestor-or-self of target has in its V-list
                // some ancestor-or-self of source.
                let t_chain: Vec<u32> = {
                    let mut v = vec![ti as u32];
                    v.extend(
                        l.octs[ti]
                            .ancestors()
                            .iter()
                            .filter_map(|a| l.find(a))
                            .map(|i| i as u32),
                    );
                    v
                };
                let s_chain: Vec<u32> = {
                    let mut v = vec![si as u32];
                    v.extend(
                        l.octs[si]
                            .ancestors()
                            .iter()
                            .filter_map(|a| l.find(a))
                            .map(|i| i as u32),
                    );
                    v
                };
                for &tc in &t_chain {
                    for &sc in &s_chain {
                        if lists.v.row(tc as usize).contains(&sc) {
                            count += 1;
                        }
                    }
                }
                // W: target leaf's W contains an ancestor-or-self of source.
                for &sc in &s_chain {
                    if lists.w.row(ti).contains(&sc) {
                        count += 1;
                    }
                }
                // X: some ancestor-or-self of target has source leaf in X.
                for &tc in &t_chain {
                    if lists.x.row(tc as usize).contains(&(si as u32)) {
                        count += 1;
                    }
                }
                assert_eq!(
                    count, 1,
                    "leaf pair ({:?} ← {:?}) covered {count} times",
                    l.octs[ti], l.octs[si]
                );
            }
        }
    }

    #[test]
    fn distributed_lists_cover_owned_leaves() {
        let p = 4;
        let outs = run(p, |c| {
            let t = points_to_octree(c, random_points(400, 47), 6);
            let l = crate::lett::build_let(c, &t);
            let lists = build_lists(&l);
            // Every owned leaf must have itself in U.
            for bi in l.owned_indices() {
                assert!(lists.u.row(bi).contains(&(bi as u32)));
            }
            (l.owned_indices().len(), lists.u.total())
        });
        let total_owned: usize = outs.iter().map(|(o, _)| o).sum();
        assert!(total_owned > 0);
    }

    #[test]
    fn parallel_rows_match_serial() {
        for (pts, q) in [
            (random_points(300, 61), 6usize),
            (ellipsoid_points(300, 8), 4),
        ] {
            let l = seq_let(pts, q);
            let serial = build_lists(&l);
            for t in [1usize, 2, 8] {
                let par = build_lists_with(&l, SetupPar::Threads(t));
                for bi in 0..l.len() {
                    assert_eq!(par.u.row(bi), serial.u.row(bi), "U row {bi} t={t}");
                    assert_eq!(par.v.row(bi), serial.v.row(bi), "V row {bi} t={t}");
                    assert_eq!(par.w.row(bi), serial.w.row(bi), "W row {bi} t={t}");
                    assert_eq!(par.x.row(bi), serial.x.row(bi), "X row {bi} t={t}");
                }
            }
        }
    }

    #[test]
    fn weights_are_positive_for_occupied_leaves() {
        let l = seq_let(random_points(200, 53), 5);
        let lists = build_lists(&l);
        let w = leaf_weights(&l, &lists);
        assert_eq!(w.len(), l.owned_indices().len());
        for (bi, wi) in l.owned_indices().into_iter().zip(&w) {
            if !l.points_of(bi).is_empty() {
                assert!(*wi > 0.0);
            }
        }
    }
}
