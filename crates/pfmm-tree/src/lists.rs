//! U-, V-, W- and X-list construction (Table I of the paper).
//!
//! For every *local* octant β (owned leaf or ancestor of one) the lists
//! collect the octants coupled to β in Algorithm 1:
//!
//! - `U(β)` (leaves only): leaf octants adjacent to β, including β —
//!   direct near-field interactions.
//! - `V(β)`: children of the colleagues of `P(β)` not adjacent to β — the
//!   far-field multipole-to-local translations.
//! - `W(β)` (leaves only): descendants α of colleagues of β with `P(α)`
//!   adjacent to β but α not adjacent — their multipole expansions are
//!   valid at β's targets.
//! - `X(β)`: the duals of W (α with β ∈ W(α)) — their sources are
//!   evaluated directly onto β's downward check surface.
//!
//! Construction uses only binary searches and adjacency-pruned descents
//! over the Morton-sorted LET array; no communication is needed
//! (everything required is already in the LET, per Algorithm 2).

use crate::lett::Let;
use pfmm_morton::MortonKey;

/// Compressed sparse rows of `u32` octant indices.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    off: Vec<u32>,
    items: Vec<u32>,
}

impl Csr {
    /// Build from per-row item vectors.
    pub fn from_rows(rows: Vec<Vec<u32>>) -> Csr {
        let mut off = Vec::with_capacity(rows.len() + 1);
        off.push(0u32);
        let mut items = Vec::new();
        for r in rows {
            items.extend(r);
            off.push(items.len() as u32);
        }
        Csr { off, items }
    }

    /// Items of row `i`.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.items[self.off[i] as usize..self.off[i + 1] as usize]
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.off.len() - 1
    }

    /// Total number of stored items.
    pub fn total(&self) -> usize {
        self.items.len()
    }

    /// Heap bytes held by the offsets and items.
    pub fn memory_bytes(&self) -> usize {
        (self.off.len() + self.items.len()) * std::mem::size_of::<u32>()
    }
}

/// The four interaction lists, rows aligned with `Let::octs`.
///
/// Rows are populated only for local octants (U/W additionally only for
/// owned leaves); other rows are empty.
#[derive(Clone, Debug)]
pub struct Lists {
    /// Direct-interaction sources (includes β itself).
    pub u: Csr,
    /// Multipole-to-local sources.
    pub v: Csr,
    /// Multipole-to-target sources.
    pub w: Csr,
    /// Source-to-local sources.
    pub x: Csr,
}

impl Lists {
    /// Sum of list lengths for octant `i` (used in work estimates).
    pub fn degree(&self, i: usize) -> usize {
        self.u.row(i).len() + self.v.row(i).len() + self.w.row(i).len() + self.x.row(i).len()
    }

    /// Heap bytes held by the four CSRs.
    pub fn memory_bytes(&self) -> usize {
        self.u.memory_bytes()
            + self.v.memory_bytes()
            + self.w.memory_bytes()
            + self.x.memory_bytes()
    }
}

/// Minimum level present in the LET (bounds the X-list ancestor walk).
fn min_level(l: &Let) -> u32 {
    l.octs.iter().map(|o| o.level()).min().unwrap_or(0)
}

/// Build all four lists for the local octants of the LET.
pub fn build_lists(l: &Let) -> Lists {
    let n = l.len();
    let mut u_rows = vec![Vec::new(); n];
    let mut v_rows = vec![Vec::new(); n];
    let mut w_rows = vec![Vec::new(); n];
    let mut x_rows = vec![Vec::new(); n];
    let lmin = min_level(l);

    for bi in 0..n {
        if !l.local[bi] {
            continue;
        }
        let beta = l.octs[bi];
        v_rows[bi] = v_list(l, &beta);
        x_rows[bi] = x_list(l, &beta, lmin);
        if l.owned[bi] {
            debug_assert!(l.is_leaf[bi]);
            u_rows[bi] = u_list(l, &beta, bi as u32);
            w_rows[bi] = w_list(l, &beta);
        }
    }
    Lists {
        u: Csr::from_rows(u_rows),
        v: Csr::from_rows(v_rows),
        w: Csr::from_rows(w_rows),
        x: Csr::from_rows(x_rows),
    }
}

/// U(β): all leaves adjacent to β, plus β itself.
fn u_list(l: &Let, beta: &MortonKey, self_idx: u32) -> Vec<u32> {
    let mut out = vec![self_idx];
    for dx in -1..=1 {
        for dy in -1..=1 {
            for dz in -1..=1 {
                if dx == 0 && dy == 0 && dz == 0 {
                    continue;
                }
                let Some(nb) = beta.neighbor(dx, dy, dz) else {
                    continue;
                };
                let (s, e) = l.subtree_range(&nb);
                if s < e {
                    // Finer-or-equal structure inside the neighbor:
                    // descend, pruning octants whose closure misses β.
                    descend_adjacent_leaves(l, beta, &nb, &mut out);
                } else {
                    // Neighbor volume covered by a coarser leaf.
                    let mut a = nb;
                    while let Some(par) = a.parent() {
                        if let Some(i) = l.find(&par) {
                            if l.is_leaf[i] {
                                out.push(i as u32);
                            }
                            break;
                        }
                        a = par;
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Collect leaves within the subtree of `top` that are adjacent to β.
fn descend_adjacent_leaves(l: &Let, beta: &MortonKey, top: &MortonKey, out: &mut Vec<u32>) {
    let Some(i) = l.find(top) else {
        // `top` itself absent: finer octants exist below it (the subtree
        // range was nonempty); recurse through the children keys.
        if top.level() < pfmm_morton::MAX_DEPTH {
            for ch in top.children() {
                let (s, e) = l.subtree_range(&ch);
                if s < e && ch.touches(beta) {
                    descend_adjacent_leaves(l, beta, &ch, out);
                }
            }
        }
        return;
    };
    if !top.touches(beta) {
        return;
    }
    if l.is_leaf[i] {
        if top.is_adjacent(beta) {
            out.push(i as u32);
        }
        return;
    }
    for ch in top.children() {
        if ch.touches(beta) {
            descend_adjacent_leaves(l, beta, &ch, out);
        }
    }
}

/// V(β): children of colleagues of P(β) that are present and not adjacent
/// to β.
fn v_list(l: &Let, beta: &MortonKey) -> Vec<u32> {
    let Some(par) = beta.parent() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for c in par.colleagues() {
        for ch in c.children() {
            if ch.is_adjacent(beta) {
                continue;
            }
            if let Some(i) = l.find(&ch) {
                out.push(i as u32);
            }
        }
    }
    out.sort_unstable();
    out
}

/// W(β): descend through β's colleagues; emit children that lose
/// adjacency while their parent keeps it.
fn w_list(l: &Let, beta: &MortonKey) -> Vec<u32> {
    let mut out = Vec::new();
    for c in beta.colleagues() {
        if let Some(ci) = l.find(&c) {
            if !l.is_leaf[ci] {
                w_descend(l, beta, &c, &mut out);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Invariant: `o` is adjacent to β and is a non-leaf present in the LET.
fn w_descend(l: &Let, beta: &MortonKey, o: &MortonKey, out: &mut Vec<u32>) {
    for ch in o.children() {
        let Some(i) = l.find(&ch) else { continue };
        if ch.is_adjacent(beta) {
            if !l.is_leaf[i] {
                w_descend(l, beta, &ch, out);
            }
        } else {
            // P(ch) = o is adjacent, ch is not: a W member (leaf or not).
            out.push(i as u32);
        }
    }
}

/// X(β): leaves α coarser than β with β inside a colleague of α, `P(β)`
/// adjacent to α, and β not adjacent to α (the dual of W).
fn x_list(l: &Let, beta: &MortonKey, lmin: u32) -> Vec<u32> {
    let Some(par) = beta.parent() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut level = beta.level();
    while level > lmin.max(1) {
        level -= 1;
        // α at `level` with β descendant of a colleague of α ⟺ α adjacent
        // to β's ancestor at `level`.
        let anc = beta.ancestor_at_level(level);
        for alpha in anc.colleagues() {
            let Some(i) = l.find(&alpha) else { continue };
            if !l.is_leaf[i] {
                continue;
            }
            if par.is_adjacent(&alpha) && !beta.is_adjacent(&alpha) {
                out.push(i as u32);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Work estimate per owned leaf for the load balancer (§III-B): direct
/// U-list pair counts plus weighted list degrees for the translation work.
///
/// Rows of `weights` align with `Let::owned_indices()` (i.e. with the
/// owning `DistTree::leaves`).
pub fn leaf_weights(l: &Let, lists: &Lists) -> Vec<f64> {
    // Relative per-item costs, calibrated loosely against the paper's
    // per-phase flop shares (Table II): direct pairs dominate, V-list
    // translations cost a grid convolution each, W/X a dense matvec each.
    const C_V: f64 = 200.0;
    const C_WX: f64 = 100.0;
    let mut out = Vec::new();
    for bi in l.owned_indices() {
        let n_beta = l.points_of(bi).len() as f64;
        let mut w = 0.0;
        for &ai in lists.u.row(bi) {
            w += n_beta * l.points_of(ai as usize).len() as f64;
        }
        w += C_V * lists.v.row(bi).len() as f64;
        w += C_WX * (lists.w.row(bi).len() + lists.x.row(bi).len()) as f64;
        out.push(w);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtree::points_to_octree;
    use crate::point::PointRec;
    use pfmm_mpisim::run;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<PointRec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                PointRec::scalar(
                    [
                        rng.random::<f64>(),
                        rng.random::<f64>(),
                        rng.random::<f64>(),
                    ],
                    1.0,
                    i as u64,
                )
            })
            .collect()
    }

    fn ellipsoid_points(n: usize, seed: u64) -> Vec<PointRec> {
        // Nonuniform: points on a 1:1:4-ish ellipsoid surface (the paper's
        // nonuniform distribution), scaled into the unit cube.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let theta = rng.random::<f64>() * std::f64::consts::PI;
                let phi = rng.random::<f64>() * 2.0 * std::f64::consts::PI;
                let x = 0.5 + 0.12 * theta.sin() * phi.cos();
                let y = 0.5 + 0.12 * theta.sin() * phi.sin();
                let z = 0.5 + 0.48 * theta.cos();
                PointRec::scalar([x, y, z.clamp(0.0, 0.999)], 1.0, i as u64)
            })
            .collect()
    }

    fn seq_let(pts: Vec<PointRec>, q: usize) -> Let {
        run(1, |c| {
            crate::lett::build_let(c, &points_to_octree(c, pts.clone(), q))
        })
        .pop()
        .expect("one rank")
    }

    /// Quantifier-level reference implementation of Table I.
    struct Brute<'a> {
        l: &'a Let,
    }

    impl<'a> Brute<'a> {
        fn u(&self, bi: usize) -> Vec<u32> {
            let beta = self.l.octs[bi];
            let mut out: Vec<u32> = (0..self.l.len())
                .filter(|&ai| {
                    self.l.is_leaf[ai] && (ai == bi || self.l.octs[ai].is_adjacent(&beta))
                })
                .map(|ai| ai as u32)
                .collect();
            out.sort_unstable();
            out
        }

        fn v(&self, bi: usize) -> Vec<u32> {
            let beta = self.l.octs[bi];
            let Some(pb) = beta.parent() else {
                return Vec::new();
            };
            (0..self.l.len())
                .filter(|&ai| {
                    let a = self.l.octs[ai];
                    a.level() == beta.level()
                        && a != beta
                        && a.parent()
                            .map(|pa| pa != pb && pa.is_adjacent(&pb))
                            .unwrap_or(false)
                        && !a.is_adjacent(&beta)
                })
                .map(|ai| ai as u32)
                .collect()
        }

        fn w(&self, bi: usize) -> Vec<u32> {
            let beta = self.l.octs[bi];
            let colleagues = beta.colleagues();
            (0..self.l.len())
                .filter(|&ai| {
                    let a = self.l.octs[ai];
                    colleagues.iter().any(|c| c.is_ancestor_of(&a))
                        && !a.is_adjacent(&beta)
                        && a.parent().map(|pa| pa.is_adjacent(&beta)).unwrap_or(false)
                })
                .map(|ai| ai as u32)
                .collect()
        }

        fn x(&self, bi: usize) -> Vec<u32> {
            // α ∈ X(β) iff β ∈ W(α), α a leaf.
            let beta_key = self.l.octs[bi];
            (0..self.l.len())
                .filter(|&ai| {
                    if !self.l.is_leaf[ai] {
                        return false;
                    }
                    let alpha = self.l.octs[ai];
                    let in_w_of_alpha = alpha
                        .colleagues()
                        .iter()
                        .any(|c| c.is_ancestor_of(&beta_key))
                        && !beta_key.is_adjacent(&alpha)
                        && beta_key
                            .parent()
                            .map(|pb| pb.is_adjacent(&alpha))
                            .unwrap_or(false);
                    in_w_of_alpha
                })
                .map(|ai| ai as u32)
                .collect()
        }
    }

    fn check_against_brute(l: &Let) {
        let lists = build_lists(l);
        let brute = Brute { l };
        for bi in 0..l.len() {
            if !l.local[bi] {
                continue;
            }
            assert_eq!(
                lists.v.row(bi),
                brute.v(bi).as_slice(),
                "V({:?})",
                l.octs[bi]
            );
            assert_eq!(
                lists.x.row(bi),
                brute.x(bi).as_slice(),
                "X({:?})",
                l.octs[bi]
            );
            if l.owned[bi] {
                assert_eq!(
                    lists.u.row(bi),
                    brute.u(bi).as_slice(),
                    "U({:?})",
                    l.octs[bi]
                );
                assert_eq!(
                    lists.w.row(bi),
                    brute.w(bi).as_slice(),
                    "W({:?})",
                    l.octs[bi]
                );
            }
        }
    }

    #[test]
    fn lists_match_brute_force_uniform() {
        check_against_brute(&seq_let(random_points(300, 17), 8));
    }

    #[test]
    fn lists_match_brute_force_small_q() {
        check_against_brute(&seq_let(random_points(150, 23), 1));
    }

    #[test]
    fn lists_match_brute_force_nonuniform() {
        check_against_brute(&seq_let(ellipsoid_points(300, 5), 6));
    }

    #[test]
    fn u_and_v_are_symmetric() {
        let l = seq_let(random_points(250, 29), 4);
        let lists = build_lists(&l);
        for bi in 0..l.len() {
            for &ai in lists.u.row(bi) {
                assert!(
                    lists.u.row(ai as usize).contains(&(bi as u32)),
                    "U symmetry violated"
                );
            }
            for &ai in lists.v.row(bi) {
                assert!(
                    lists.v.row(ai as usize).contains(&(bi as u32)),
                    "V symmetry violated"
                );
            }
        }
    }

    #[test]
    fn w_and_x_are_dual() {
        let l = seq_let(random_points(250, 37), 4);
        let lists = build_lists(&l);
        for bi in 0..l.len() {
            for &ai in lists.w.row(bi) {
                assert!(
                    lists.x.row(ai as usize).contains(&(bi as u32)),
                    "β ∈ W ⇒ dual X missing"
                );
            }
            for &ai in lists.x.row(bi) {
                assert!(
                    lists.w.row(ai as usize).contains(&(bi as u32)),
                    "β ∈ X ⇒ dual W missing"
                );
            }
        }
    }

    /// Every pair of leaves must interact exactly once: either directly
    /// (U) or through exactly one V/W/X coupling on the paths to their
    /// ancestors. This is the FMM's partition-of-unity over the far field.
    #[test]
    fn interaction_partition_of_unity() {
        let l = seq_let(random_points(120, 41), 3);
        let lists = build_lists(&l);
        let leaf_idx: Vec<usize> = (0..l.len()).filter(|&i| l.is_leaf[i]).collect();
        for &ti in &leaf_idx {
            for &si in &leaf_idx {
                let mut count = 0usize;
                // U: direct.
                if lists.u.row(ti).contains(&(si as u32)) {
                    count += 1;
                }
                // V: some ancestor-or-self of target has in its V-list
                // some ancestor-or-self of source.
                let t_chain: Vec<u32> = {
                    let mut v = vec![ti as u32];
                    v.extend(
                        l.octs[ti]
                            .ancestors()
                            .iter()
                            .filter_map(|a| l.find(a))
                            .map(|i| i as u32),
                    );
                    v
                };
                let s_chain: Vec<u32> = {
                    let mut v = vec![si as u32];
                    v.extend(
                        l.octs[si]
                            .ancestors()
                            .iter()
                            .filter_map(|a| l.find(a))
                            .map(|i| i as u32),
                    );
                    v
                };
                for &tc in &t_chain {
                    for &sc in &s_chain {
                        if lists.v.row(tc as usize).contains(&sc) {
                            count += 1;
                        }
                    }
                }
                // W: target leaf's W contains an ancestor-or-self of source.
                for &sc in &s_chain {
                    if lists.w.row(ti).contains(&sc) {
                        count += 1;
                    }
                }
                // X: some ancestor-or-self of target has source leaf in X.
                for &tc in &t_chain {
                    if lists.x.row(tc as usize).contains(&(si as u32)) {
                        count += 1;
                    }
                }
                assert_eq!(
                    count, 1,
                    "leaf pair ({:?} ← {:?}) covered {count} times",
                    l.octs[ti], l.octs[si]
                );
            }
        }
    }

    #[test]
    fn distributed_lists_cover_owned_leaves() {
        let p = 4;
        let outs = run(p, |c| {
            let t = points_to_octree(c, random_points(400, 47), 6);
            let l = crate::lett::build_let(c, &t);
            let lists = build_lists(&l);
            // Every owned leaf must have itself in U.
            for bi in l.owned_indices() {
                assert!(lists.u.row(bi).contains(&(bi as u32)));
            }
            (l.owned_indices().len(), lists.u.total())
        });
        let total_owned: usize = outs.iter().map(|(o, _)| o).sum();
        assert!(total_owned > 0);
    }

    #[test]
    fn weights_are_positive_for_occupied_leaves() {
        let l = seq_let(random_points(200, 53), 5);
        let lists = build_lists(&l);
        let w = leaf_weights(&l, &lists);
        assert_eq!(w.len(), l.owned_indices().len());
        for (bi, wi) in l.owned_indices().into_iter().zip(&w) {
            if !l.points_of(bi).is_empty() {
                assert!(*wi > 0.0);
            }
        }
    }
}
