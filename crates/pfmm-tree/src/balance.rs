//! 2:1 balancing of linear octrees — the headline algorithm of the
//! DENDRO substrate the paper builds on (Sundar, Sampath & Biros 2008).
//!
//! The KIFMM itself does not require balance (its U/V/W/X lists are
//! defined for arbitrary adaptivity, and the paper's 25-level trees are
//! unbalanced), but the finite-element and multigrid consumers of the
//! same octree infrastructure do, and bounded neighbor-level difference
//! also caps the U/W/X list sizes. The implementation here is the
//! sequential ripple algorithm: repeatedly split any leaf more than one
//! level coarser than an adjacent leaf, then re-complete.

use std::collections::BTreeSet;

use pfmm_morton::{complete_octree, linearize, linearize_keep_finest, MortonKey};

/// Enforce the 2:1 condition on a set of octants: in the returned
/// complete linear octree, adjacent leaves differ by at most one level.
///
/// The input may be partial (it is linearized and completed first); all
/// input octants survive or are replaced by their own descendants, never
/// coarsened — so point-to-leaf assignments remain valid after
/// re-bucketing by containment.
pub fn balance_2to1(seeds: Vec<MortonKey>) -> Vec<MortonKey> {
    // Work on the key set; the ripple adds the colleagues-of-parent
    // ancestors that force coarse neighbors to refine.
    let mut set: BTreeSet<MortonKey> = linearize(seeds).into_iter().collect();

    // For every octant, insert all colleagues of all its ancestors: after
    // completion, any leaf covering one of those colleague cells is at
    // most one level coarser than the octant's parent — the classical
    // balance-by-insertion argument.
    let mut queue: Vec<MortonKey> = set.iter().copied().collect();
    while let Some(k) = queue.pop() {
        let Some(parent) = k.parent() else { continue };
        for c in parent.colleagues() {
            if set.insert(c) {
                queue.push(c);
            }
        }
    }

    // Finest-wins overlap resolution: an inserted coarse colleague must
    // never swallow an existing refinement.
    let fine = linearize_keep_finest(set.into_iter().collect());
    let balanced = complete_octree(fine);
    debug_assert!(is_balanced_2to1(&balanced));
    balanced
}

/// Check the 2:1 condition: every pair of adjacent leaves differs by at
/// most one level. Quadratic; intended for tests and debug assertions.
pub fn is_balanced_2to1(leaves: &[MortonKey]) -> bool {
    for (i, a) in leaves.iter().enumerate() {
        for b in leaves.iter().skip(i + 1) {
            if a.is_adjacent(b) && a.level().abs_diff(b.level()) > 1 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_morton::is_complete_linear;

    fn deep_seed_tree() -> Vec<MortonKey> {
        // A deep octant hugging the cube center from below: completion
        // alone leaves it corner-adjacent to the coarse level-1 octants
        // across the center — the textbook unbalanced case. (A deep
        // octant in a cube *corner* would not do: greedy completion
        // produces the graded sibling cascade there already.)
        let mut k = MortonKey::root().child(0);
        for _ in 0..5 {
            k = k.child(7);
        }
        vec![k]
    }

    #[test]
    fn deep_corner_gets_graded_neighbors() {
        let seeds = deep_seed_tree();
        let before = complete_octree(seeds.clone());
        assert!(!is_balanced_2to1(&before), "raw completion is unbalanced");
        let after = balance_2to1(seeds);
        assert!(is_complete_linear(&after));
        assert!(is_balanced_2to1(&after));
        assert!(after.len() > before.len(), "balance refines");
    }

    #[test]
    fn already_balanced_tree_unchanged_in_shape() {
        // A uniform level-2 tree is balanced; balancing must keep it.
        let mut seeds = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                seeds.push(MortonKey::root().child(i).child(j));
            }
        }
        let out = balance_2to1(seeds.clone());
        assert_eq!(out, complete_octree(seeds));
    }

    #[test]
    fn input_octants_never_coarsened() {
        let seeds = deep_seed_tree();
        let out = balance_2to1(seeds.clone());
        for s in &seeds {
            // s itself (or a refinement of it) is present; no ancestor of
            // s is a leaf.
            assert!(
                out.binary_search(s).is_ok() || out.iter().any(|o| s.is_ancestor_of(o)),
                "seed preserved or refined"
            );
            assert!(
                !out.iter().any(|o| o.is_ancestor_of(s)),
                "seed never swallowed by a coarser leaf"
            );
        }
    }

    #[test]
    fn balancing_is_idempotent() {
        let seeds = deep_seed_tree();
        let once = balance_2to1(seeds);
        let twice = balance_2to1(once.clone());
        assert_eq!(once, twice);
    }

    #[test]
    fn random_adaptive_tree_balances() {
        // Pseudo-random deep refinements in several corners.
        let mut seeds = Vec::new();
        let mut k = MortonKey::root();
        for (step, child) in [0usize, 7, 3, 5, 1, 6, 2].iter().enumerate() {
            k = k.child(*child);
            if step % 2 == 0 {
                seeds.push(k);
            }
        }
        let out = balance_2to1(seeds);
        assert!(is_complete_linear(&out));
        assert!(is_balanced_2to1(&out));
    }
}
