//! Intra-rank shared-memory parallelism, shared by the setup pipeline
//! (sort/tree/lists, this crate) and the evaluation phases
//! (`pfmm-core`, which re-exports this module as `pfmm_core::par`).
//!
//! The paper notes (§IV) that "the S2U, D2T, ULI, WLI, VLI, XLI steps can
//! be implemented in parallel" — each visits target octants independently
//! and writes disjoint per-octant output — while U2U and D2D would need
//! Euler-tour techniques it does not use. This module parallelizes
//! exactly that set on a host thread pool: octants are split into
//! contiguous index ranges, and each worker receives the matching
//! disjoint window of the output array, so the parallelism is safe by
//! construction (no atomics, no locks on the data path).
//!
//! The setup engine (DESIGN.md §13) reuses the same machinery: the radix
//! sort, octree refinement, and interaction-list rows all decompose into
//! contiguous index ranges whose outputs are reassembled in input order,
//! so every parallel setup stage is bitwise identical to its serial
//! counterpart.

/// How much intra-rank parallelism the setup pipeline may use.
///
/// `Serial` is the original single-threaded path — comparison sorts and
/// plain loops — kept as the ablation baseline. `Threads(t)` enables the
/// radix sort and range-parallel construction with `t` workers; both
/// produce bitwise-identical structures (property-tested), so the choice
/// is numerics-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetupPar {
    /// Original serial path (comparison sort, sequential loops).
    Serial,
    /// Radix sort + range-parallel construction on this many workers.
    Threads(usize),
}

impl SetupPar {
    /// Worker count for range-parallel stages (`Serial` runs inline).
    pub fn threads(self) -> usize {
        match self {
            SetupPar::Serial => 1,
            SetupPar::Threads(t) => t.max(1),
        }
    }
}

/// Process octants `0..noct` in parallel: the index space is split into
/// up to `threads` contiguous ranges, and each worker gets the matching
/// window of `out` (`offset_of(i)` maps octant `i` to its element offset;
/// it must be monotone with `offset_of(noct) == out.len()`).
///
/// `work(range, window, base)` processes octants `range` writing into
/// `window`, whose element 0 corresponds to global offset `base`
/// (= `offset_of(range.start)`); it returns the flops it performed.
/// Returns the summed flops.
///
/// With `threads <= 1` the work runs inline on the caller's thread.
pub fn par_windows<F>(
    threads: usize,
    noct: usize,
    out: &mut [f64],
    offset_of: &(dyn Fn(usize) -> usize + Sync),
    work: F,
) -> u64
where
    F: Fn(std::ops::Range<usize>, &mut [f64], usize) -> u64 + Sync,
{
    // Contiguous octant ranges of roughly equal length. (Phase work
    // correlates with octant count well enough when no better weight is
    // known; phases with per-octant interaction counts should use
    // `par_windows_weighted`.)
    let t = threads.min(noct.max(1));
    if t <= 1 || noct < 2 {
        debug_assert_eq!(offset_of(noct), out.len(), "offset map covers the output");
        return work(0..noct, out, 0);
    }
    let mut cuts = Vec::with_capacity(t + 1);
    for k in 0..=t {
        cuts.push(k * noct / t);
    }
    par_windows_at(&cuts, noct, out, offset_of, work)
}

/// [`par_windows`] with interaction-count-weighted range boundaries:
/// `weight[i]` estimates octant `i`'s work, and the contiguous cuts
/// equalize cumulative weight instead of octant count — adaptive trees
/// concentrate their U/V interactions in the refined regions, which
/// leaves count-based chunks nearly idle.
///
/// The weights steer only where the ranges are cut; the per-octant
/// arithmetic (and its floating-point order) is unchanged.
///
/// For the U-list phase the weights come from the near-field layout
/// (`NearField::oct_weights` in `pfmm-core`): targets × *padded* sources
/// per box, so the tiled engine's lane-padding overhead is balanced
/// across chunks, not just the real pair count.
pub fn par_windows_weighted<F>(
    threads: usize,
    weights: &[u64],
    out: &mut [f64],
    offset_of: &(dyn Fn(usize) -> usize + Sync),
    work: F,
) -> u64
where
    F: Fn(std::ops::Range<usize>, &mut [f64], usize) -> u64 + Sync,
{
    let noct = weights.len();
    let t = threads.min(noct.max(1));
    if t <= 1 || noct < 2 {
        debug_assert_eq!(offset_of(noct), out.len(), "offset map covers the output");
        return work(0..noct, out, 0);
    }
    let cuts = weighted_cuts(t, weights);
    par_windows_at(&cuts, noct, out, offset_of, work)
}

/// Contiguous cut points splitting `weights` into `parts` ranges of
/// roughly equal cumulative weight (cut `k` is the first index whose
/// prefix sum reaches `k/parts` of the total). Monotone, first 0, last
/// `weights.len()`.
pub fn weighted_cuts(parts: usize, weights: &[u64]) -> Vec<usize> {
    let n = weights.len();
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    let mut cuts = Vec::with_capacity(parts + 1);
    cuts.push(0);
    if total == 0 {
        // Degenerate: fall back to count-based cuts.
        for k in 1..=parts {
            cuts.push(k * n / parts.max(1));
        }
        return cuts;
    }
    let mut acc: u128 = 0;
    let mut i = 0;
    for k in 1..parts {
        let target = total * k as u128 / parts as u128;
        while i < n && acc < target {
            acc += weights[i] as u128;
            i += 1;
        }
        cuts.push(i);
    }
    cuts.push(n);
    cuts
}

fn par_windows_at<F>(
    cuts: &[usize],
    noct: usize,
    out: &mut [f64],
    offset_of: &(dyn Fn(usize) -> usize + Sync),
    work: F,
) -> u64
where
    F: Fn(std::ops::Range<usize>, &mut [f64], usize) -> u64 + Sync,
{
    debug_assert_eq!(offset_of(noct), out.len(), "offset map covers the output");
    let t = cuts.len() - 1;
    if t <= 1 || noct < 2 {
        return work(0..noct, out, 0);
    }

    let mut tasks: Vec<(std::ops::Range<usize>, &mut [f64], usize)> = Vec::with_capacity(t);
    let mut rest = out;
    let mut consumed = 0usize;
    for k in 0..t {
        let (lo, hi) = (cuts[k], cuts[k + 1]);
        let base = offset_of(lo);
        let end = offset_of(hi);
        debug_assert_eq!(base, consumed);
        let (window, tail) = rest.split_at_mut(end - base);
        rest = tail;
        consumed = end;
        tasks.push((lo..hi, window, base));
    }
    debug_assert!(rest.is_empty());

    let work = &work;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|(range, window, base)| scope.spawn(move |_| work(range, window, base)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("evaluation worker panicked"))
            .sum()
    })
    .expect("par_windows scope")
}

/// Parallel map over an index list, each element producing a value; the
/// results come back in input order. Used for the V-list source spectra
/// (each source octant transformed once, independently) and the setup
/// pipeline's per-box interaction-list rows.
pub fn par_map<T, F>(threads: usize, items: &[usize], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(|&i| f(i)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let f = &f;
    let mut slots: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
    let results = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(items.len()))
            .map(|_| {
                let next = &next;
                scope.spawn(move |_| {
                    let mut mine = Vec::new();
                    loop {
                        let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if k >= items.len() {
                            break;
                        }
                        mine.push((k, f(items[k])));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("par_map scope");
    for (k, v) in results {
        slots[k] = Some(v);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every item mapped"))
        .collect()
}

/// [`par_map`] over the index range `0..n` — the common setup-pipeline
/// shape (per-box rows, per-level groups, contiguous chunks).
pub fn par_map_n<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let items: Vec<usize> = (0..n).collect();
    par_map(threads, &items, f)
}

/// Contiguous chunk boundaries splitting `0..n` into at most `threads`
/// ranges (`cuts[k]..cuts[k+1]` is worker `k`'s range). Monotone, first
/// 0, last `n`; degenerates to one range when `threads <= 1`.
pub fn chunk_cuts(threads: usize, n: usize) -> Vec<usize> {
    let t = threads.max(1).min(n.max(1));
    (0..=t).map(|k| k * n / t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_cover_and_write_disjointly() {
        let noct = 17;
        let stride = 3;
        let mut out = vec![0.0f64; noct * stride];
        let flops = par_windows(4, noct, &mut out, &|i| i * stride, |range, window, base| {
            let mut n = 0;
            for i in range {
                let w = &mut window[i * stride - base..(i + 1) * stride - base];
                for (j, v) in w.iter_mut().enumerate() {
                    *v = (i * 10 + j) as f64;
                }
                n += 1;
            }
            n
        });
        assert_eq!(flops, 17);
        for i in 0..noct {
            for j in 0..stride {
                assert_eq!(out[i * stride + j], (i * 10 + j) as f64);
            }
        }
    }

    #[test]
    fn single_thread_matches_parallel() {
        let noct = 23;
        let run = |threads| {
            let mut out = vec![0.0f64; noct * 2];
            par_windows(
                threads,
                noct,
                &mut out,
                &|i| i * 2,
                |range, window, base| {
                    for i in range {
                        window[i * 2 - base] = (i * i) as f64;
                        window[i * 2 + 1 - base] = -(i as f64);
                    }
                    0
                },
            );
            out
        };
        assert_eq!(run(1), run(5));
    }

    #[test]
    fn irregular_offsets() {
        // Variable-size per-octant windows (like per-leaf point counts).
        let sizes = [3usize, 0, 5, 1, 0, 2];
        let offs: Vec<usize> = sizes
            .iter()
            .scan(0, |acc, s| {
                let o = *acc;
                *acc += s;
                Some(o)
            })
            .chain(std::iter::once(sizes.iter().sum()))
            .collect();
        let total: usize = sizes.iter().sum();
        let mut out = vec![0.0f64; total];
        par_windows(
            3,
            sizes.len(),
            &mut out,
            &|i| offs[i],
            |range, window, base| {
                for i in range.clone() {
                    for k in offs[i]..offs[i + 1] {
                        window[k - base] = i as f64;
                    }
                }
                0
            },
        );
        let mut want = Vec::new();
        for (i, s) in sizes.iter().enumerate() {
            want.extend(std::iter::repeat_n(i as f64, *s));
        }
        assert_eq!(out, want);
    }

    #[test]
    fn weighted_cuts_balance_cumulative_weight() {
        // Heavy tail: count-based cuts would give three idle ranges.
        let w: Vec<u64> = (0..16).map(|i| if i < 12 { 0 } else { 100 }).collect();
        let cuts = weighted_cuts(4, &w);
        assert_eq!(cuts.first(), Some(&0));
        assert_eq!(cuts.last(), Some(&16));
        assert!(cuts.windows(2).all(|c| c[0] <= c[1]));
        let total: u64 = w.iter().sum();
        for k in 0..4 {
            let s: u64 = w[cuts[k]..cuts[k + 1]].iter().sum();
            // No range exceeds its fair share by more than one item.
            assert!(s <= total / 4 + 100, "range {k} carries {s}");
        }
    }

    #[test]
    fn weighted_cuts_zero_weights_fall_back() {
        let cuts = weighted_cuts(3, &[0u64; 9]);
        assert_eq!(cuts, vec![0, 3, 6, 9]);
    }

    #[test]
    fn weighted_windows_match_uniform_numerics() {
        let noct = 29;
        let weights: Vec<u64> = (0..noct as u64).map(|i| i * i % 17).collect();
        let run_uniform = || {
            let mut out = vec![0.0f64; noct * 2];
            par_windows(4, noct, &mut out, &|i| i * 2, fill);
            out
        };
        let run_weighted = || {
            let mut out = vec![0.0f64; noct * 2];
            par_windows_weighted(4, &weights, &mut out, &|i| i * 2, fill);
            out
        };
        fn fill(range: std::ops::Range<usize>, window: &mut [f64], base: usize) -> u64 {
            for i in range {
                window[i * 2 - base] = (i * 3) as f64;
                window[i * 2 + 1 - base] = -(i as f64);
            }
            0
        }
        assert_eq!(run_uniform(), run_weighted());
    }

    #[test]
    fn par_map_ordered() {
        let items: Vec<usize> = (0..50).map(|i| i * 2).collect();
        let got = par_map(4, &items, |i| i + 1);
        let want: Vec<usize> = items.iter().map(|i| i + 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_n_ordered() {
        assert_eq!(
            par_map_n(4, 37, |i| i * i),
            (0..37).map(|i| i * i).collect::<Vec<_>>()
        );
        assert_eq!(par_map_n(1, 3, |i| i), vec![0, 1, 2]);
        assert!(par_map_n(4, 0, |i| i).is_empty());
    }

    #[test]
    fn chunk_cuts_cover() {
        assert_eq!(chunk_cuts(1, 10), vec![0, 10]);
        assert_eq!(chunk_cuts(4, 0), vec![0, 0]);
        let cuts = chunk_cuts(4, 10);
        assert_eq!(cuts.first(), Some(&0));
        assert_eq!(cuts.last(), Some(&10));
        assert!(cuts.windows(2).all(|c| c[0] <= c[1]));
    }
}
