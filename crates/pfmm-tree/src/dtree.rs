//! Distributed `Points2Octree` and the work-weighted repartition.
//!
//! Construction follows the paper's bottom-up scheme (§III-A): after the
//! global Morton sort, rank `k` controls the region `Ω_k` between two
//! fence entries; it tiles that region with the coarsest aligned octants
//! and refines every octant holding more than `q` points. Because the
//! fence also bucketed the points, every leaf's points are local, and the
//! union of all ranks' leaves is a complete linear octree of the cube.
//!
//! Region boundaries fall on arbitrary finest-grid cells, so octants that
//! straddle a boundary are split finer than strictly necessary — exactly
//! the "finer than necessary" DENDRO behaviour the paper notes and
//! tolerates.

use crate::par::{par_map_n, SetupPar};
use crate::point::PointRec;
use crate::psort;
use crate::sort::sample_sort_points;
use pfmm_morton::{cover_interval, MortonKey, MAX_DEPTH, RANK_SPAN};
use pfmm_mpisim::collectives::{allgather_one, allreduce, alltoallv, exscan_sum_u64};
use pfmm_mpisim::Comm;

/// This rank's share of the distributed tree: a contiguous run of the
/// global Morton-sorted leaf array, with the points of each leaf.
#[derive(Clone, Debug)]
pub struct DistTree {
    /// Owned leaves, Morton-sorted; a complete tiling of this rank's
    /// region (may be empty if the region is empty).
    pub leaves: Vec<MortonKey>,
    /// CSR offsets: leaf `i` holds `pts[leaf_off[i]..leaf_off[i+1]]`.
    pub leaf_off: Vec<usize>,
    /// Points, Morton-sorted, aligned with the leaf CSR.
    pub pts: Vec<PointRec>,
    /// Region fence in rank space (`p + 1` entries): rank `k` controls
    /// `[region[k], region[k+1])`.
    pub region: Vec<u128>,
}

impl DistTree {
    /// Points of leaf `i`.
    pub fn leaf_points(&self, i: usize) -> &[PointRec] {
        &self.pts[self.leaf_off[i]..self.leaf_off[i + 1]]
    }

    /// Number of owned leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }
}

/// Build the distributed linear octree: sort the points, carve the cube
/// into per-rank regions, and refine until every leaf holds at most `q`
/// points (or `MAX_DEPTH` is reached, for pathological coincident
/// points).
///
/// # Panics
/// Panics if `q == 0`.
pub fn points_to_octree(c: &Comm, pts: Vec<PointRec>, q: usize) -> DistTree {
    let (pts, region) = sample_sort_points(c, pts);
    octree_from_sorted(c, pts, region, q)
}

/// Refine an already-sorted, already-partitioned point set into the
/// distributed tree (the non-sort half of [`points_to_octree`], split out
/// so drivers can time the sort separately, as the paper reports it).
///
/// # Panics
/// Panics if `q == 0`.
pub fn octree_from_sorted(c: &Comm, pts: Vec<PointRec>, region: Vec<u128>, q: usize) -> DistTree {
    octree_from_sorted_with(c, pts, region, q, SetupPar::Serial)
}

/// Tasks per worker when expanding the refinement frontier: enough
/// slack that the work-stealing `par_map` can absorb the skew of an
/// adaptive tree's subtree sizes.
const FRONTIER_SLACK: usize = 8;

/// [`octree_from_sorted`] with a parallelism budget. The per-region
/// cover blocks (one Morton-ordered subtree each) are expanded into a
/// frontier of independent subtrees, refined in parallel, and the
/// per-subtree leaf runs concatenated in frontier order — the frontier
/// expansion replays [`refine`]'s own splitting rule, so the leaf array
/// and CSR are identical to the serial recursion's.
pub fn octree_from_sorted_with(
    c: &Comm,
    pts: Vec<PointRec>,
    region: Vec<u128>,
    q: usize,
    par: SetupPar,
) -> DistTree {
    assert!(q >= 1, "points-per-box bound must be positive");
    let lo = region[c.rank()];
    let hi = region[c.rank() + 1];
    let mut leaves = Vec::new();
    let mut leaf_off = vec![0usize];
    if lo < hi {
        let ranks = psort::ranks_of(par, &pts);
        let mut frontier: Vec<(MortonKey, usize, usize)> = cover_interval(lo, hi - 1)
            .into_iter()
            .map(|block| {
                // Points of this block: a contiguous run of the sorted array.
                let s = ranks.partition_point(|&r| r < block.rank());
                let e = ranks.partition_point(|&r| r <= block.rank_end());
                (block, s, e)
            })
            .collect();
        let t = par.threads();
        if t > 1 {
            frontier = expand_frontier(frontier, &ranks, q, t * FRONTIER_SLACK);
        }
        let parts = par_map_n(t, frontier.len(), |i| {
            let (block, s, e) = frontier[i];
            let mut lv = Vec::new();
            let mut off = Vec::new();
            refine(block, s, e, &ranks, q, &mut lv, &mut off);
            (lv, off)
        });
        for (lv, off) in parts {
            leaves.extend(lv);
            leaf_off.extend(off);
        }
    }
    DistTree {
        leaves,
        leaf_off,
        pts,
        region,
    }
}

/// Split frontier subtrees breadth-first until at least `target` remain
/// (or nothing can split). A subtree splits exactly when [`refine`]
/// would split it — more than `q` points above `MAX_DEPTH` — and its
/// children enter in Morton order, so refining the frontier left to
/// right emits the same leaves as refining the original blocks.
fn expand_frontier(
    mut frontier: Vec<(MortonKey, usize, usize)>,
    ranks: &[u128],
    q: usize,
    target: usize,
) -> Vec<(MortonKey, usize, usize)> {
    while frontier.len() < target {
        let mut next = Vec::with_capacity(frontier.len() * 8);
        let mut grew = false;
        for &(oct, start, end) in &frontier {
            if end - start <= q || oct.level() == MAX_DEPTH {
                next.push((oct, start, end));
                continue;
            }
            grew = true;
            let mut s = start;
            for child in oct.children() {
                let e = s + ranks[s..end].partition_point(|&r| r <= child.rank_end());
                next.push((child, s, e));
                s = e;
            }
            debug_assert_eq!(s, end, "children partition the parent's points");
        }
        frontier = next;
        if !grew {
            break;
        }
    }
    frontier
}

/// Recursively split `oct` while it holds more than `q` points, emitting
/// leaves (and their point ranges) in Morton order.
fn refine(
    oct: MortonKey,
    start: usize,
    end: usize,
    ranks: &[u128],
    q: usize,
    leaves: &mut Vec<MortonKey>,
    leaf_off: &mut Vec<usize>,
) {
    if end - start <= q || oct.level() == MAX_DEPTH {
        leaves.push(oct);
        leaf_off.push(end);
        return;
    }
    let mut s = start;
    for child in oct.children() {
        let e = s + ranks[s..end].partition_point(|&r| r <= child.rank_end());
        refine(child, s, e, ranks, q, leaves, leaf_off);
        s = e;
    }
    debug_assert_eq!(s, end, "children partition the parent's points");
}

/// Wire record for migrating a leaf during repartitioning.
#[derive(Copy, Clone)]
struct LeafMsg {
    key: MortonKey,
    npts: u32,
}

/// Repartition leaves so each rank's total weight is approximately equal
/// (paper §III-B; Algorithm 1 of Sundar et al.). `weights[i]` is the
/// interaction-list work estimate of `tree.leaves[i]`. Leaves keep their
/// global Morton order; each rank again receives a contiguous chunk.
///
/// # Panics
/// Panics if `weights.len() != tree.num_leaves()`.
pub fn repartition_by_weight(c: &Comm, tree: DistTree, weights: &[f64]) -> DistTree {
    assert_eq!(weights.len(), tree.num_leaves(), "one weight per leaf");
    let p = c.size();

    // Work in integer milli-units so prefix sums are exact and identical
    // across ranks.
    let to_units = |w: f64| -> u64 { (w.max(0.0) * 1000.0).round() as u64 + 1 };
    let local: u64 = weights.iter().map(|&w| to_units(w)).sum();
    let before = exscan_sum_u64(c, local);
    let total = allreduce(c, vec![local], |a, b| a + b)[0];

    // Leaf i goes to the rank whose equal-weight band contains the leaf's
    // weight midpoint.
    let mut outgoing_leaves: Vec<Vec<LeafMsg>> = vec![Vec::new(); p];
    let mut outgoing_pts: Vec<Vec<PointRec>> = vec![Vec::new(); p];
    let mut cum = before;
    for (i, leaf) in tree.leaves.iter().enumerate() {
        let w = to_units(weights[i]);
        let mid = cum + w / 2;
        cum += w;
        let dest = (((mid as u128) * p as u128) / total.max(1) as u128) as usize;
        let dest = dest.min(p - 1);
        let pts = tree.leaf_points(i);
        outgoing_leaves[dest].push(LeafMsg {
            key: *leaf,
            npts: pts.len() as u32,
        });
        outgoing_pts[dest].extend_from_slice(pts);
    }

    let in_leaves = alltoallv(c, outgoing_leaves);
    let in_pts = alltoallv(c, outgoing_pts);

    // Sources arrive in rank order and each source's leaves are sorted, so
    // concatenation preserves global Morton order.
    let mut leaves = Vec::new();
    let mut leaf_off = vec![0usize];
    let mut pts = Vec::new();
    for (lv, pv) in in_leaves.into_iter().zip(in_pts) {
        let mut consumed = 0usize;
        for msg in lv {
            leaves.push(msg.key);
            consumed += msg.npts as usize;
            leaf_off.push(pts.len() + consumed);
        }
        debug_assert_eq!(consumed, pv.len());
        pts.extend(pv);
    }
    debug_assert!(leaves.windows(2).all(|w| w[0] < w[1]), "global order kept");

    // Rebuild the region fence from the new first-leaf ranks; empty ranks
    // inherit their right neighbor's start (an empty region).
    let first = leaves.first().map(|l| l.rank()).unwrap_or(u128::MAX);
    let firsts = allgather_one(c, first);
    let mut region = vec![0u128; p + 1];
    region[p] = RANK_SPAN;
    for k in (1..p).rev() {
        region[k] = if firsts[k] != u128::MAX {
            firsts[k]
        } else {
            region[k + 1]
        };
    }
    DistTree {
        leaves,
        leaf_off,
        pts,
        region,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_morton::is_complete_linear;
    use pfmm_mpisim::run;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64, base_gid: u64) -> Vec<PointRec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                PointRec::scalar(
                    [
                        rng.random::<f64>(),
                        rng.random::<f64>(),
                        rng.random::<f64>(),
                    ],
                    1.0,
                    base_gid + i as u64,
                )
            })
            .collect()
    }

    /// Gather all ranks' leaves and check global-tree invariants.
    fn check_global(trees: &[DistTree], q: usize, n_total: usize) {
        let mut all: Vec<MortonKey> = Vec::new();
        let mut pts_total = 0usize;
        for t in trees {
            assert_eq!(t.leaf_off.len(), t.leaves.len() + 1);
            pts_total += t.pts.len();
            for (i, leaf) in t.leaves.iter().enumerate() {
                let pts = t.leaf_points(i);
                assert!(pts.len() <= q, "leaf respects q");
                for pr in pts {
                    assert!(leaf.contains_point(&pr.pos), "point inside its leaf");
                }
                all.push(*leaf);
            }
        }
        assert_eq!(pts_total, n_total, "no point lost");
        assert!(is_complete_linear(&all), "global tree complete and sorted");
    }

    #[test]
    fn sequential_tree_invariants() {
        let q = 8;
        let trees = run(1, |c| points_to_octree(c, random_points(500, 3, 0), q));
        check_global(&trees, q, 500);
    }

    #[test]
    fn distributed_tree_invariants() {
        for p in [2usize, 3, 4, 8] {
            let q = 10;
            let n = 300;
            let trees = run(p, |c| {
                points_to_octree(
                    c,
                    random_points(n, c.rank() as u64, (c.rank() * n) as u64),
                    q,
                )
            });
            check_global(&trees, q, p * n);
        }
    }

    #[test]
    fn region_fence_matches_ownership() {
        let trees = run(4, |c| {
            points_to_octree(c, random_points(200, 5, c.rank() as u64 * 200), 6)
        });
        let region = trees[0].region.clone();
        for (k, t) in trees.iter().enumerate() {
            for leaf in &t.leaves {
                assert!(leaf.rank() >= region[k] && leaf.rank_end() < region[k + 1]);
            }
        }
    }

    #[test]
    fn parallel_refinement_matches_serial() {
        // Frontier-parallel refinement must reproduce the serial DFS
        // leaf array and CSR exactly, including on clustered inputs
        // where one subtree carries most of the frontier's work.
        let clustered = |n: usize, seed: u64, base: u64| -> Vec<PointRec> {
            let mut pts = random_points(n / 2, seed, base);
            let mut rng = StdRng::seed_from_u64(seed + 99);
            pts.extend((0..n - n / 2).map(|i| {
                PointRec::scalar(
                    [
                        0.1 + 0.01 * rng.random::<f64>(),
                        0.2 + 0.01 * rng.random::<f64>(),
                        0.3 + 0.01 * rng.random::<f64>(),
                    ],
                    1.0,
                    base + (n / 2 + i) as u64,
                )
            }));
            pts
        };
        for p in [1usize, 3] {
            let serial = run(p, |c| {
                let (pts, region) = sample_sort_points(
                    c,
                    clustered(400, 7 + c.rank() as u64, c.rank() as u64 * 400),
                );
                octree_from_sorted(c, pts, region, 6)
            });
            for t in [2usize, 8] {
                let par = run(p, |c| {
                    let (pts, region) = sample_sort_points(
                        c,
                        clustered(400, 7 + c.rank() as u64, c.rank() as u64 * 400),
                    );
                    octree_from_sorted_with(c, pts, region, 6, SetupPar::Threads(t))
                });
                for (a, b) in par.iter().zip(&serial) {
                    assert_eq!(a.leaves, b.leaves, "p={p} t={t}");
                    assert_eq!(a.leaf_off, b.leaf_off, "p={p} t={t}");
                    assert_eq!(a.pts, b.pts, "p={p} t={t}");
                    assert_eq!(a.region, b.region, "p={p} t={t}");
                }
            }
        }
    }

    #[test]
    fn coincident_points_capped_by_max_depth() {
        let pts: Vec<PointRec> = (0..20)
            .map(|i| PointRec::scalar([0.3, 0.3, 0.3], 1.0, i))
            .collect();
        let trees = run(1, |c| points_to_octree(c, pts.clone(), 4));
        // The deepest octant holds all 20 coincident points.
        let t = &trees[0];
        let counts: Vec<usize> = (0..t.num_leaves())
            .map(|i| t.leaf_points(i).len())
            .collect();
        assert_eq!(*counts.iter().max().unwrap(), 20);
        assert!(t.leaves.iter().any(|l| l.level() == MAX_DEPTH));
    }

    #[test]
    fn repartition_balances_weight() {
        let p = 4;
        let n = 400;
        let trees = run(p, |c| {
            let t = points_to_octree(
                c,
                random_points(n, 11 + c.rank() as u64, (c.rank() * n) as u64),
                4,
            );
            // Weight = point count: balancing particles across ranks.
            let w: Vec<f64> = (0..t.num_leaves())
                .map(|i| t.leaf_points(i).len() as f64)
                .collect();
            repartition_by_weight(c, t, &w)
        });
        check_global(&trees, 4, p * n);
        let counts: Vec<usize> = trees.iter().map(|t| t.pts.len()).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max - min < p * n / 4,
            "weighted repartition should roughly balance points: {counts:?}"
        );
    }

    #[test]
    fn repartition_preserves_regions_tiling() {
        let trees = run(3, |c| {
            let t = points_to_octree(c, random_points(150, 21, c.rank() as u64 * 150), 5);
            let w = vec![1.0; t.num_leaves()];
            repartition_by_weight(c, t, &w)
        });
        let region = &trees[0].region;
        assert_eq!(region[0], 0);
        assert_eq!(region[region.len() - 1], RANK_SPAN);
        for w in region.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for t in &trees[1..] {
            assert_eq!(&t.region, region);
        }
    }
}
