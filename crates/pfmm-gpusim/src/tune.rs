//! GPU points-per-box autotuning — the paper's Table III experiment
//! turned into the autotuning algorithm it says it "resembles".
//!
//! GPU and CPU optima differ ("we used roughly 400 points per box for
//! the GPU runs, and 100 points per box for the CPU runs. Both numbers
//! were optimized for their respective architectures"): the GPU favors
//! deeper boxes because the compute-bound U-list runs near peak while
//! the bandwidth-bound V-list does not. This tuner runs the real
//! pipeline on a subsample and minimizes the device-modeled time.

use pfmm_tree::PointRec;

use crate::device::DeviceSpec;
use crate::fmm::run_gpu_fmm;

/// One probed configuration.
#[derive(Copy, Clone, Debug)]
pub struct GpuTunePoint {
    /// Candidate points-per-box.
    pub q: usize,
    /// Modeled device+host seconds on the subsample.
    pub gpu_secs: f64,
    /// Modeled 2009 CPU-only seconds (for reference).
    pub cpu_secs: f64,
}

/// Probe each candidate `q` on a strided subsample of at most `sample`
/// points; returns per-candidate modeled costs.
pub fn gpu_tune_sweep(
    points: &[PointRec],
    order: usize,
    candidates: &[usize],
    sample: usize,
    device: &DeviceSpec,
) -> Vec<GpuTunePoint> {
    let stride = (points.len() / sample.max(1)).max(1);
    let sub: Vec<PointRec> = points.iter().step_by(stride).copied().collect();
    candidates
        .iter()
        .map(|&q| {
            let rep = run_gpu_fmm(sub.clone(), q, order, device, false);
            GpuTunePoint {
                q,
                gpu_secs: rep.total_gpu(),
                cpu_secs: rep.total_cpu2009(),
            }
        })
        .collect()
}

/// Pick the `q` minimizing modeled GPU time.
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn autotune_q_gpu(
    points: &[PointRec],
    order: usize,
    candidates: &[usize],
    sample: usize,
    device: &DeviceSpec,
) -> usize {
    assert!(!candidates.is_empty());
    gpu_tune_sweep(points, order, candidates, sample, device)
        .into_iter()
        .min_by(|a, b| a.gpu_secs.partial_cmp(&b.gpu_secs).expect("finite times"))
        .expect("nonempty")
        .q
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_core::distrib::{randomize_densities, uniform_cube};

    #[test]
    fn sweep_probes_all() {
        let mut pts = uniform_cube(8000, 61, 0);
        randomize_densities(&mut pts, 1, 3);
        let dev = DeviceSpec::tesla_s1070();
        let sweep = gpu_tune_sweep(&pts, 4, &[30, 244], 4000, &dev);
        assert_eq!(sweep.len(), 2);
        assert!(sweep.iter().all(|t| t.gpu_secs > 0.0 && t.cpu_secs > 0.0));
    }

    #[test]
    fn gpu_prefers_deeper_boxes_than_2009_cpu() {
        // The architectural divergence behind the paper's q=400-vs-100
        // choice: rank the same candidates by device-modeled time and by
        // 2009-CPU-modeled time; the GPU's optimum must not be shallower.
        let mut pts = uniform_cube(16_000, 67, 0);
        randomize_densities(&mut pts, 1, 5);
        let dev = DeviceSpec::tesla_s1070();
        let sweep = gpu_tune_sweep(&pts, 4, &[16, 125, 1000], 16_000, &dev);
        let best_gpu = sweep
            .iter()
            .min_by(|a, b| a.gpu_secs.partial_cmp(&b.gpu_secs).expect("finite"))
            .expect("nonempty")
            .q;
        let best_cpu = sweep
            .iter()
            .min_by(|a, b| a.cpu_secs.partial_cmp(&b.cpu_secs).expect("finite"))
            .expect("nonempty")
            .q;
        assert!(best_gpu >= best_cpu, "gpu q {best_gpu} vs cpu q {best_cpu}");
        assert_eq!(
            autotune_q_gpu(&pts, 4, &[16, 125, 1000], 16_000, &dev),
            best_gpu
        );
    }
}
