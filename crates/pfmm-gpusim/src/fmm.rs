//! The GPU-accelerated FMM pipeline of §IV: S2U, ULI, VLI (Hadamard) and
//! D2T run as gpusim kernels; U2U, D2D, the per-octant FFTs, and the W/X
//! lists stay on the (2009-modeled) CPU, exactly the split the paper
//! describes.
//!
//! Two time columns come out of a run:
//!
//! - **GPU/CPU**: modeled device time for the accelerated kernels (from
//!   their traffic tallies) plus modeled 2009-CPU time for the phases the
//!   paper leaves on the host;
//! - **CPU-only**: every phase on the modeled 2009 CPU (500 Mflop/s
//!   sustained, the paper's §VI figure).
//!
//! Both columns derive from *measured* flop/byte tallies of the real
//! computation, so their ratio — the paper's 25–30× claim — is a model
//! statement only about 2009 hardware throughput, not about this host.

use std::sync::Arc;
use std::time::Instant;

use pfmm_core::driver::{gather_potentials, Fmm, FmmConfig, M2lMode};
use pfmm_core::m2l_fft::FftM2l;
use pfmm_core::ops::Ops;
use pfmm_core::surface::{surface_points, RAD_INNER, RAD_OUTER};
use pfmm_kernels::{direct_eval, Laplace};
use pfmm_mpisim::run;
use pfmm_tree::{build_let, build_lists, points_to_octree, Let, Lists, PointRec};

use crate::device::DeviceSpec;
use crate::kernels::{d2t, s2u, uli, vli_hadamard, SurfBox};
use crate::layout::GpuLayout;

/// The evaluation phases of the GPU run (Table III rows).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GpuPhase {
    /// S2U (GPU) + U2U (CPU).
    Upward,
    /// Direct interactions (GPU).
    UList,
    /// FFTs (CPU) + Hadamard (GPU) + inverse FFTs (CPU).
    VList,
    /// W- and X-lists (CPU, not accelerated — §IV).
    WXList,
    /// D2D (CPU) + D2T (GPU).
    Downward,
}

impl GpuPhase {
    /// All phases in reporting order.
    pub const ALL: [GpuPhase; 5] = [
        GpuPhase::Upward,
        GpuPhase::UList,
        GpuPhase::VList,
        GpuPhase::WXList,
        GpuPhase::Downward,
    ];

    /// Row label as in Table III.
    pub fn label(&self) -> &'static str {
        match self {
            GpuPhase::Upward => "Upward Pass",
            GpuPhase::UList => "U list",
            GpuPhase::VList => "V list",
            GpuPhase::WXList => "W/X lists",
            GpuPhase::Downward => "Downward Pass",
        }
    }
}

/// Timing and accuracy report of one GPU FMM evaluation.
#[derive(Clone, Debug)]
pub struct GpuFmmReport {
    /// Points evaluated.
    pub n: usize,
    /// Points-per-box bound used.
    pub q: usize,
    /// Surface order used.
    pub order: usize,
    /// Modeled GPU/CPU hybrid seconds per phase.
    pub gpu_secs: [f64; 5],
    /// Modeled 2009 CPU-only seconds per phase.
    pub cpu2009_secs: [f64; 5],
    /// Measured wall seconds of this host executing the simulation.
    pub wall_secs: [f64; 5],
    /// Measured wall seconds of the up-density reduce-and-scatter
    /// (zero for single-rank runs).
    pub comm_wall_secs: f64,
    /// Host-side layout translation seconds (measured).
    pub translate_secs: f64,
    /// Modeled PCIe transfer seconds.
    pub transfer_secs: f64,
    /// Relative ℓ² error of the f32 GPU pipeline vs the f64 CPU FMM.
    pub rel_err_vs_f64: f64,
    /// Global tree leaves.
    pub leaves: u64,
}

impl GpuFmmReport {
    /// Total modeled GPU/CPU evaluation time (including transfers).
    pub fn total_gpu(&self) -> f64 {
        self.gpu_secs.iter().sum::<f64>() + self.transfer_secs
    }

    /// Total modeled 2009 CPU-only evaluation time.
    pub fn total_cpu2009(&self) -> f64 {
        self.cpu2009_secs.iter().sum()
    }

    /// Modeled speedup of the GPU/CPU configuration over CPU-only.
    pub fn speedup(&self) -> f64 {
        self.total_cpu2009() / self.total_gpu()
    }

    /// Synthesize Chrome-trace spans for the modeled GPU pipeline: the
    /// host-side layout translation, the five Table III stages, and the
    /// PCIe transfer, laid out back-to-back on the [`TID_GPU`] lane of
    /// `rank` starting at `t0_us`. The spans render the *modeled* GPU
    /// timeline (what the device would have done), not this host's wall
    /// clock — each span carries a `modeled_us` arg so downstream tools
    /// can tell.
    pub fn trace_events(&self, rank: u32, t0_us: f64) -> Vec<pfmm_trace::Event> {
        use pfmm_trace::{Event, EventKind, TID_GPU};
        let mut evs = Vec::new();
        let mut t = t0_us;
        let mut push = |name: &'static str, secs: f64, t: &mut f64| {
            if secs <= 0.0 {
                return;
            }
            let us = secs * 1e6;
            let mk = |kind, ts_us, args| Event {
                kind,
                name: std::borrow::Cow::Borrowed(name),
                cat: std::borrow::Cow::Borrowed("gpu"),
                rank,
                tid: TID_GPU,
                ts_us,
                flow: 0,
                args,
            };
            evs.push(mk(
                EventKind::Begin,
                *t,
                vec![(std::borrow::Cow::Borrowed("modeled_us"), us as u64)],
            ));
            evs.push(mk(EventKind::End, *t + us, Vec::new()));
            *t += us;
        };
        push("Translate", self.translate_secs, &mut t);
        for (i, ph) in GpuPhase::ALL.iter().enumerate() {
            push(ph.label(), self.gpu_secs[i], &mut t);
        }
        push("PCIe transfer", self.transfer_secs, &mut t);
        evs
    }
}

const CPU09: f64 = 0.5e9; // 2009 sustained CPU rate for FMM kernels (paper §VI)
/// 2009 CPU rate for the per-octant FFTs: FFTW-class transforms ran at a
/// few Gflop/s on Harpertown, well above the irregular FMM kernels.
const CPU09_FFT: f64 = 2.0e9;

/// Run the GPU FMM pipeline on one device for a single-rank problem
/// (Laplace kernel, single precision on the device, like the paper's
/// Lincoln runs). `check_accuracy` additionally runs the f64 CPU FMM for
/// the error column (skip for large benchmark sweeps). W/X stay on the
/// host, like the paper's implementation; see [`run_gpu_fmm_wx`] for the
/// paper's stated future work.
pub fn run_gpu_fmm(
    points: Vec<PointRec>,
    q: usize,
    order: usize,
    device: &DeviceSpec,
    check_accuracy: bool,
) -> GpuFmmReport {
    run_gpu_fmm_impl(points, q, order, device, check_accuracy, false)
}

/// [`run_gpu_fmm`] with the W- and X-lists also executed on the device —
/// the extension §IV announces as ongoing work ("transferring the
/// W,X-lists on the GPU").
pub fn run_gpu_fmm_wx(
    points: Vec<PointRec>,
    q: usize,
    order: usize,
    device: &DeviceSpec,
    check_accuracy: bool,
) -> GpuFmmReport {
    run_gpu_fmm_impl(points, q, order, device, check_accuracy, true)
}

fn run_gpu_fmm_impl(
    points: Vec<PointRec>,
    q: usize,
    order: usize,
    device: &DeviceSpec,
    check_accuracy: bool,
    wx_on_gpu: bool,
) -> GpuFmmReport {
    let dev = *device;
    let pts2 = points.clone();
    let (mut report, pairs) = run(1, move |c| {
        gpu_pipeline(c, pts2.clone(), q, order, &dev, wx_on_gpu)
    })
    .pop()
    .expect("one rank");
    if check_accuracy {
        report.rel_err_vs_f64 = accuracy_vs_f64(&points, q, order, &[pairs]);
    }
    report
}

/// Run the GPU pipeline distributed: `p` ranks, each with its own
/// simulated device (the paper's "each MPI process is assumed to have
/// private access to an accelerator"), real LET construction and a real
/// hypercube reduce-and-scatter of the up-densities between the device
/// phases. Returns one report per rank.
pub fn run_gpu_fmm_distributed(
    p: usize,
    points: Vec<PointRec>,
    q: usize,
    order: usize,
    device: &DeviceSpec,
    check_accuracy: bool,
) -> Vec<GpuFmmReport> {
    let dev = *device;
    let pts2 = points.clone();
    let out = run(p, move |c| {
        let mine: Vec<PointRec> = pts2.iter().skip(c.rank()).step_by(p).copied().collect();
        gpu_pipeline(c, mine, q, order, &dev, false)
    });
    let mut reports: Vec<GpuFmmReport> = Vec::with_capacity(p);
    let mut all_pairs = Vec::with_capacity(p);
    for (r, pairs) in out {
        reports.push(r);
        all_pairs.push(pairs);
    }
    if check_accuracy {
        let err = accuracy_vs_f64(&points, q, order, &all_pairs);
        for r in &mut reports {
            r.rel_err_vs_f64 = err;
        }
    }
    reports
}

/// Relative ℓ² error of gathered (gid, potential) pairs against the f64
/// CPU FMM on the full cloud.
fn accuracy_vs_f64(points: &[PointRec], q: usize, order: usize, pairs: &[Vec<(u64, f64)>]) -> f64 {
    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order,
            q,
            m2l: M2lMode::Fft,
            ..Default::default()
        },
    );
    let pts2 = points.to_vec();
    let reference = run(1, move |c| {
        let res = fmm.evaluate(c, pts2.clone());
        gather_potentials(c, &res, 1)
    })
    .pop()
    .expect("one rank");
    let by_gid: std::collections::HashMap<u64, f64> =
        reference.into_iter().map(|(g, v)| (g, v[0])).collect();
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for chunk in pairs {
        for (gid, got) in chunk {
            let want = by_gid[gid];
            num += (got - want) * (got - want);
            den += want * want;
        }
    }
    (num / den).sqrt()
}

/// One rank's GPU FMM pipeline (sequential when `c.size() == 1`).
fn gpu_pipeline(
    c: &pfmm_mpisim::Comm,
    points: Vec<PointRec>,
    q: usize,
    order: usize,
    device: &DeviceSpec,
    wx_on_gpu: bool,
) -> (GpuFmmReport, Vec<(u64, f64)>) {
    let kernel = Arc::new(Laplace);
    let ops = Ops::new(kernel.clone(), order, 1e-12);
    let fft = FftM2l::new(kernel.clone(), order);
    let nsurf = ops.n_surf();
    let g = fft.grid_len();

    // ---- Setup: tree, LET, lists (host side, shared with the CPU path),
    // including the paper's work-weighted repartition.
    let mut t = points_to_octree(c, points, q);
    let mut l: Let = build_let(c, &t);
    let mut lists: Lists = build_lists(&l);
    if c.size() > 1 {
        let w = pfmm_tree::lists::leaf_weights(&l, &lists);
        t = pfmm_tree::repartition_by_weight(c, t, &w);
        l = build_let(c, &t);
        lists = build_lists(&l);
    }
    drop(t);
    let noct = l.len();
    let n = (0..noct)
        .filter(|&i| l.owned[i])
        .map(|i| l.points_of(i).len())
        .sum::<usize>();

    // ---- Data-structure translation (measured; paper claims it is minor).
    let lay = GpuLayout::build(&l, &lists, 64);

    let mut gpu_secs = [0.0f64; 5];
    let mut cpu_secs = [0.0f64; 5];
    let mut wall_secs = [0.0f64; 5];
    let mut comm_wall_secs = 0.0f64;

    // ---------------- Upward: S2U on GPU, U2U on CPU ----------------
    let t0 = Instant::now();
    let check_rel: Vec<[f32; 3]> = surface_points(order, &[0.0; 3], 1.0, RAD_OUTER)
        .iter()
        .map(|p| p.map(|v| v as f32))
        .collect();
    let (uc2e0, _) = ops.uc2e(0);
    let uc2e32: Vec<f32> = uc2e0.as_slice().iter().map(|&v| v as f32).collect();
    let mut sboxes = Vec::with_capacity(lay.num_src_boxes());
    let mut sbox_oct = Vec::with_capacity(lay.num_src_boxes());
    for (oct, &sb) in lay.src_box_of_oct.iter().enumerate() {
        if sb < 0 || !l.owned[oct] {
            continue;
        }
        let key = l.octs[oct];
        let r = lay.src_range(sb as usize);
        // Homogeneous Laplace: uc2e scale = (r_l / r_0)^{+1}.
        let scale = (key.radius() / 0.5) as f32;
        sboxes.push(SurfBox {
            center: key.center().map(|v| v as f32),
            radius: key.radius() as f32,
            pt_off: r.start as u32,
            pt_len: r.len() as u32,
            scale,
        });
        sbox_oct.push(oct);
    }
    let (u32s, s2u_stats) = s2u(&sboxes, &lay.src, &check_rel, &uc2e32);

    // Scatter into the f64 per-octant density array and run U2U on the
    // host.
    let mut u = vec![0.0f64; noct * nsurf];
    let mut has_up = vec![false; noct];
    for (b, &oct) in sbox_oct.iter().enumerate() {
        for j in 0..nsurf {
            u[oct * nsurf + j] = u32s[b * nsurf + j] as f64;
        }
        has_up[oct] = true;
    }
    let max_level = l.octs.iter().map(|o| o.level()).max().unwrap_or(0);
    let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize + 1];
    for i in 0..noct {
        if l.local[i] {
            by_level[l.octs[i].level() as usize].push(i as u32);
        }
    }
    let mut u2u_flops = 0u64;
    {
        let mut tmp = vec![0.0f64; nsurf];
        for level in (1..=max_level).rev() {
            for &iu in &by_level[level as usize] {
                let i = iu as usize;
                if !has_up[i] {
                    continue;
                }
                let key = l.octs[i];
                let Some(pi) = key.parent().and_then(|p| l.find(&p)) else {
                    continue;
                };
                let (m, s) = ops.u2u(level, key.child_index());
                tmp.copy_from_slice(&u[i * nsurf..(i + 1) * nsurf]);
                m.matvec_acc_scaled(&tmp, &mut u[pi * nsurf..(pi + 1) * nsurf], s);
                has_up[pi] = true;
                u2u_flops += 2 * (nsurf * nsurf) as u64;
            }
        }
    }
    wall_secs[0] = t0.elapsed().as_secs_f64();
    gpu_secs[0] = device.kernel_time(&s2u_stats) + u2u_flops as f64 / CPU09;
    cpu_secs[0] = (s2u_stats.tally.flops + u2u_flops) as f64 / CPU09;

    // ---------------- Up-density reduce-and-scatter (Algorithm 3) -----
    if c.size() > 1 {
        let t_comm = Instant::now();
        pfmm_core::reduce::reduce_scatter_hypercube(c, &l, nsurf, &mut u);
        comm_wall_secs = t_comm.elapsed().as_secs_f64();
        for i in 0..noct {
            if !has_up[i] {
                has_up[i] = u[i * nsurf..(i + 1) * nsurf].iter().any(|&v| v != 0.0);
            }
        }
    }

    // ---------------- V-list: CPU FFTs + GPU Hadamard ----------------
    let t0 = Instant::now();
    let mut dcheck = vec![0.0f64; noct * nsurf];
    let mut fft_flops = 0u64;
    let fft_cost = (5 * g * g.ilog2() as usize) as u64;
    // Forward spectra of every V-list source (f32 for the device).
    let mut uhat_id = vec![-1i32; noct];
    let mut uhats: Vec<f32> = Vec::new();
    let mut khat_id: std::collections::HashMap<(u32, [i8; 3]), u32> = Default::default();
    let mut khats: Vec<f32> = Vec::new();
    let mut pairs_off = vec![0u32];
    let mut pair_khat = Vec::new();
    let mut pair_uhat = Vec::new();
    let mut pair_scale = Vec::new();
    let mut vtargets = Vec::new();
    for bi in 0..noct {
        if !l.local[bi] || lists.v.row(bi).is_empty() {
            continue;
        }
        let beta = l.octs[bi];
        let mut any = false;
        for &ai in lists.v.row(bi) {
            let ai = ai as usize;
            if !has_up[ai] {
                continue;
            }
            if uhat_id[ai] < 0 {
                let spec = fft.source_spectrum(&u[ai * nsurf..(ai + 1) * nsurf]);
                uhat_id[ai] = (uhats.len() / (2 * g)) as i32;
                for c in &spec {
                    uhats.push(c.re as f32);
                    uhats.push(c.im as f32);
                }
                fft_flops += fft_cost;
            }
            let alpha = l.octs[ai];
            let cu = beta.cell_units() as i64;
            let off = [
                ((beta.anchor()[0] as i64 - alpha.anchor()[0] as i64) / cu) as i8,
                ((beta.anchor()[1] as i64 - alpha.anchor()[1] as i64) / cu) as i8,
                ((beta.anchor()[2] as i64 - alpha.anchor()[2] as i64) / cu) as i8,
            ];
            let (spec, scale) = fft.kernel_spectrum(beta.level(), off);
            let kid = *khat_id.entry((beta.level(), off)).or_insert_with(|| {
                let id = (khats.len() / (2 * g)) as u32;
                for c in spec.iter() {
                    khats.push(c.re as f32);
                    khats.push(c.im as f32);
                }
                id
            });
            pair_khat.push(kid);
            pair_uhat.push(uhat_id[ai] as u32);
            pair_scale.push(scale as f32);
            any = true;
        }
        if any {
            vtargets.push(bi);
            pairs_off.push(pair_khat.len() as u32);
        } else {
            pair_khat.truncate(*pairs_off.last().expect("nonempty") as usize);
        }
    }
    let mut hadamard_flops = 0u64;
    if !vtargets.is_empty() {
        let (acc, had_stats) = vli_hadamard(
            g,
            &pairs_off,
            &pair_khat,
            &pair_uhat,
            &pair_scale,
            &khats,
            &uhats,
        );
        hadamard_flops = had_stats.tally.flops;
        // Inverse transforms + surface extraction on the host.
        for (t, &bi) in vtargets.iter().enumerate() {
            let grid: Vec<pfmm_fft::Complex> = (0..g)
                .map(|i| {
                    pfmm_fft::Complex::new(
                        acc[t * 2 * g + 2 * i] as f64,
                        acc[t * 2 * g + 2 * i + 1] as f64,
                    )
                })
                .collect();
            fft.finish(grid, &mut dcheck[bi * nsurf..(bi + 1) * nsurf]);
            fft_flops += fft_cost;
        }
        gpu_secs[2] = device.kernel_time(&had_stats) + fft_flops as f64 / CPU09_FFT;
    }
    cpu_secs[2] = hadamard_flops as f64 / CPU09 + fft_flops as f64 / CPU09_FFT;
    wall_secs[2] = t0.elapsed().as_secs_f64();

    // ---------------- W/X lists ----------------
    // CPU in the paper's GPU code; optionally on the device (the paper's
    // stated future work) via `wx_on_gpu`.
    let t0 = Instant::now();
    let mut f_host = vec![0.0f64; l.pts.len().max(1)];
    let mut wx_flops = 0u64;
    if wx_on_gpu {
        let equiv_rel: Vec<[f32; 3]> = surface_points(order, &[0.0; 3], 1.0, RAD_INNER)
            .iter()
            .map(|p| p.map(|v| v as f32))
            .collect();
        let check_rel = equiv_rel.clone(); // downward check shares the template

        // W on the GPU: per layout target box, its W sources as SurfBox +
        // f32 equivalent-density blocks.
        let mut wsrc_id = vec![-1i32; noct];
        let mut wsrc_boxes = Vec::new();
        let mut wsrc_u = Vec::new();
        let mut wlist_off = vec![0u32];
        let mut wlist = Vec::new();
        let mut tgt_boxes = Vec::with_capacity(lay.num_tgt_boxes());
        for tb in 0..lay.num_tgt_boxes() {
            let oct = lay.tgt_oct[tb] as usize;
            let key = l.octs[oct];
            let start = lay.tgt_off[tb] as usize;
            let end = if tb + 1 < lay.num_tgt_boxes() {
                lay.tgt_off[tb + 1] as usize
            } else {
                lay.tgt.len()
            };
            tgt_boxes.push(SurfBox {
                center: key.center().map(|v| v as f32),
                radius: key.radius() as f32,
                pt_off: start as u32,
                pt_len: (end - start) as u32,
                scale: 1.0,
            });
            for &ai in lists.w.row(oct) {
                let ai = ai as usize;
                if !has_up[ai] {
                    continue;
                }
                if wsrc_id[ai] < 0 {
                    wsrc_id[ai] = wsrc_boxes.len() as i32;
                    let akey = l.octs[ai];
                    wsrc_boxes.push(SurfBox {
                        center: akey.center().map(|v| v as f32),
                        radius: akey.radius() as f32,
                        pt_off: 0,
                        pt_len: 0,
                        scale: 1.0,
                    });
                    wsrc_u.extend(u[ai * nsurf..(ai + 1) * nsurf].iter().map(|&v| v as f32));
                }
                wlist.push(wsrc_id[ai] as u32);
            }
            wlist_off.push(wlist.len() as u32);
        }
        let (wout, wstats) = crate::kernels::wli(
            &tgt_boxes,
            &lay.tgt,
            &wlist_off,
            &wlist,
            &wsrc_boxes,
            &equiv_rel,
            &wsrc_u,
        );
        let mut cursor = 0usize;
        for (tb, bx) in tgt_boxes.iter().enumerate() {
            let oct = lay.tgt_oct[tb] as usize;
            let off = l.pt_off[oct];
            for j in 0..lay.tgt_cnt[tb] as usize {
                f_host[off + j] += wout[cursor + j] as f64;
            }
            cursor += bx.pt_len as usize;
        }

        // X on the GPU: per local octant with a nonempty X row, its
        // source leaves as layout source-box ids.
        let mut xtgt_boxes = Vec::new();
        let mut xtgt_oct = Vec::new();
        let mut xlist_off = vec![0u32];
        let mut xlist = Vec::new();
        for bi in 0..noct {
            if !l.local[bi] || lists.x.row(bi).is_empty() {
                continue;
            }
            let mut any = false;
            for &ai in lists.x.row(bi) {
                let sb = lay.src_box_of_oct[ai as usize];
                if sb >= 0 {
                    xlist.push(sb as u32);
                    any = true;
                }
            }
            if any {
                let key = l.octs[bi];
                xtgt_boxes.push(SurfBox {
                    center: key.center().map(|v| v as f32),
                    radius: key.radius() as f32,
                    pt_off: 0,
                    pt_len: 0,
                    scale: 1.0,
                });
                xtgt_oct.push(bi);
                xlist_off.push(xlist.len() as u32);
            } else {
                // No point-carrying sources after all: drop the row.
            }
        }
        let (xout, xstats) = crate::kernels::xli(
            &xtgt_boxes,
            &xlist_off,
            &xlist,
            &lay.src,
            &|b| lay.src_range(b),
            &check_rel,
        );
        for (t, &bi) in xtgt_oct.iter().enumerate() {
            for j in 0..nsurf {
                dcheck[bi * nsurf + j] += xout[t * nsurf + j] as f64;
            }
        }
        wx_flops = wstats.tally.flops + xstats.tally.flops;
        gpu_secs[3] = device.kernel_time(&wstats) + device.kernel_time(&xstats);
    } else {
        // X: sources of coarse leaves onto downward check surfaces.
        for bi in 0..noct {
            if !l.local[bi] || lists.x.row(bi).is_empty() {
                continue;
            }
            let key = l.octs[bi];
            let dc = ops.down_check_surface(&key.center(), key.radius());
            for &ai in lists.x.row(bi) {
                let ai = ai as usize;
                let pts = l.points_of(ai);
                if pts.is_empty() {
                    continue;
                }
                let pos: Vec<[f64; 3]> = pts.iter().map(|p| p.pos).collect();
                let den: Vec<f64> = pts.iter().map(|p| p.den[0]).collect();
                direct_eval(
                    &Laplace,
                    &dc,
                    &pos,
                    &den,
                    &mut dcheck[bi * nsurf..(bi + 1) * nsurf],
                );
                wx_flops += (pos.len() * nsurf) as u64 * 20;
            }
        }
        // W is evaluated into the host-side potential buffer.
        for bi in 0..noct {
            if !l.owned[bi] || lists.w.row(bi).is_empty() {
                continue;
            }
            let pts = l.points_of(bi);
            if pts.is_empty() {
                continue;
            }
            let pos: Vec<[f64; 3]> = pts.iter().map(|p| p.pos).collect();
            let off = l.pt_off[bi];
            for &ai in lists.w.row(bi) {
                let ai = ai as usize;
                if !has_up[ai] {
                    continue;
                }
                let alpha = l.octs[ai];
                let ue = ops.up_equiv_surface(&alpha.center(), alpha.radius());
                direct_eval(
                    &Laplace,
                    &pos,
                    &ue,
                    &u[ai * nsurf..(ai + 1) * nsurf],
                    &mut f_host[off..off + pos.len()],
                );
                wx_flops += (pos.len() * nsurf) as u64 * 20;
            }
        }
        gpu_secs[3] = wx_flops as f64 / CPU09;
    }
    wall_secs[3] = t0.elapsed().as_secs_f64();
    cpu_secs[3] = wx_flops as f64 / CPU09;

    // ---------------- Downward: D2D on CPU, D2T on GPU ----------------
    let t0 = Instant::now();
    let mut d = vec![0.0f64; noct * nsurf];
    let mut d2d_flops = 0u64;
    {
        let mut tmp = vec![0.0f64; nsurf];
        for level in 0..=max_level {
            for &iu in &by_level[level as usize] {
                let i = iu as usize;
                let key = l.octs[i];
                let (dc2e, s) = ops.dc2e(level);
                dc2e.matvec_acc_scaled(
                    &dcheck[i * nsurf..(i + 1) * nsurf],
                    &mut d[i * nsurf..(i + 1) * nsurf],
                    s,
                );
                d2d_flops += 2 * (nsurf * nsurf) as u64;
                if level > 0 {
                    if let Some(pi) = key.parent().and_then(|p| l.find(&p)) {
                        let (m, s) = ops.d2d(level, key.child_index());
                        tmp.copy_from_slice(&d[pi * nsurf..(pi + 1) * nsurf]);
                        m.matvec_acc_scaled(&tmp, &mut d[i * nsurf..(i + 1) * nsurf], s);
                        d2d_flops += 2 * (nsurf * nsurf) as u64;
                    }
                }
            }
        }
    }
    // GPU D2T over the layout's target boxes.
    let equiv_rel: Vec<[f32; 3]> = surface_points(order, &[0.0; 3], 1.0, RAD_OUTER)
        .iter()
        .map(|p| p.map(|v| v as f32))
        .collect();
    let mut tboxes = Vec::with_capacity(lay.num_tgt_boxes());
    let mut d32 = Vec::with_capacity(lay.num_tgt_boxes() * nsurf);
    for tb in 0..lay.num_tgt_boxes() {
        let oct = lay.tgt_oct[tb] as usize;
        let key = l.octs[oct];
        let start = lay.tgt_off[tb] as usize;
        let end = if tb + 1 < lay.num_tgt_boxes() {
            lay.tgt_off[tb + 1] as usize
        } else {
            lay.tgt.len()
        };
        tboxes.push(SurfBox {
            center: key.center().map(|v| v as f32),
            radius: key.radius() as f32,
            pt_off: start as u32,
            pt_len: (end - start) as u32,
            scale: 1.0,
        });
        for j in 0..nsurf {
            d32.push(d[oct * nsurf + j] as f32);
        }
    }
    let (d2t_out, d2t_stats) = d2t(&tboxes, &lay.tgt, &equiv_rel, &d32);
    wall_secs[4] = t0.elapsed().as_secs_f64();
    gpu_secs[4] = device.kernel_time(&d2t_stats) + d2d_flops as f64 / CPU09;
    cpu_secs[4] = (d2t_stats.tally.flops + d2d_flops) as f64 / CPU09;

    // ---------------- U-list on GPU ----------------
    let t0 = Instant::now();
    let (uli_out, uli_stats) = uli(&lay);
    wall_secs[1] = t0.elapsed().as_secs_f64();
    gpu_secs[1] = device.kernel_time(&uli_stats);
    cpu_secs[1] = uli_stats.tally.flops as f64 / CPU09;

    // ---------------- Combine potentials ----------------
    // f(point) = ULI + D2T (both f32, padded layout) + W (host f64).
    let mut f = vec![0.0f64; l.pts.len().max(1)];
    let mut d2t_cursor = 0usize;
    for tb in 0..lay.num_tgt_boxes() {
        let oct = lay.tgt_oct[tb] as usize;
        let off = l.pt_off[oct];
        let cnt = lay.tgt_cnt[tb] as usize;
        let pad_len = tboxes[tb].pt_len as usize;
        for j in 0..cnt {
            f[off + j] = uli_out[lay.tgt_off[tb] as usize + j] as f64
                + d2t_out[d2t_cursor + j] as f64
                + f_host[off + j];
        }
        d2t_cursor += pad_len;
    }

    // Owned (gid, potential) pairs for verification by the caller.
    let mut pairs = Vec::with_capacity(n);
    for i in 0..noct {
        if !l.owned[i] {
            continue;
        }
        let off = l.pt_off[i];
        for (j, p) in l.points_of(i).iter().enumerate() {
            pairs.push((p.gid, f[off + j]));
        }
    }

    let leaves = l.is_leaf.iter().filter(|&&b| b).count() as u64;
    let transfer_bytes = lay.bytes_to_device + (u.len() + d.len()) as u64 * 4;
    let report = GpuFmmReport {
        n,
        q,
        order,
        gpu_secs,
        cpu2009_secs: cpu_secs,
        wall_secs,
        comm_wall_secs,
        translate_secs: lay.translate_secs,
        transfer_secs: device.transfer_time(transfer_bytes),
        rel_err_vs_f64: f64::NAN,
        leaves,
    };
    (report, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_core::distrib::{randomize_densities, uniform_cube};

    #[test]
    fn gpu_pipeline_matches_f64_fmm() {
        let mut pts = uniform_cube(1200, 3, 0);
        randomize_densities(&mut pts, 1, 4);
        let dev = DeviceSpec::tesla_s1070();
        let rep = run_gpu_fmm(pts, 40, 4, &dev, true);
        assert!(
            rep.rel_err_vs_f64 < 5e-4,
            "f32 pipeline error vs f64: {}",
            rep.rel_err_vs_f64
        );
        assert!(rep.total_gpu() > 0.0);
        assert!(rep.leaves > 8);
    }

    #[test]
    fn gpu_beats_modeled_2009_cpu() {
        let mut pts = uniform_cube(4000, 5, 0);
        randomize_densities(&mut pts, 1, 6);
        let dev = DeviceSpec::tesla_s1070();
        let rep = run_gpu_fmm(pts, 150, 6, &dev, false);
        let sp = rep.speedup();
        assert!(sp > 5.0, "modeled speedup {sp}");
        assert!(sp < 400.0, "speedup within physical limits: {sp}");
    }

    #[test]
    fn ulist_dominates_at_large_q() {
        // The paper's Table III regime (its q = 244 vs 1953 columns,
        // scaled down): larger boxes move work from the bandwidth-bound
        // V-list to the compute-bound U-list.
        let mut pts = uniform_cube(32_768, 7, 0);
        randomize_densities(&mut pts, 1, 8);
        let dev = DeviceSpec::tesla_s1070();
        let big_q = run_gpu_fmm(pts.clone(), 1900, 4, &dev, false);
        let small_q = run_gpu_fmm(pts, 244, 4, &dev, false);
        assert!(
            big_q.gpu_secs[1] > small_q.gpu_secs[1],
            "U-list grows with q"
        );
        assert!(
            big_q.cpu2009_secs[2] < small_q.cpu2009_secs[2],
            "V-list shrinks with q"
        );
    }

    #[test]
    fn trace_events_render_modeled_pipeline() {
        let mut pts = uniform_cube(1500, 3, 0);
        randomize_densities(&mut pts, 1, 4);
        let dev = DeviceSpec::tesla_s1070();
        let rep = run_gpu_fmm(pts, 60, 4, &dev, false);
        let evs = rep.trace_events(2, 100.0);
        assert!(!evs.is_empty());
        // Spans are back-to-back on the GPU lane of the requested rank
        // and cover exactly the modeled pipeline duration.
        let st = pfmm_trace::chrome::validate(&evs).expect("valid chrome trace");
        assert!(
            st.spans >= 2,
            "at least translate + one stage: {}",
            st.spans
        );
        assert_eq!(st.flows, 0);
        let mut total_us = 0.0;
        let mut cursor = 100.0;
        for pair in evs.chunks(2) {
            assert_eq!(pair[0].kind, pfmm_trace::EventKind::Begin);
            assert_eq!(pair[1].kind, pfmm_trace::EventKind::End);
            assert_eq!(pair[0].rank, 2);
            assert_eq!(pair[0].tid, pfmm_trace::TID_GPU);
            assert_eq!(pair[0].cat, "gpu");
            assert!((pair[0].ts_us - cursor).abs() < 1e-6, "no gaps");
            cursor = pair[1].ts_us;
            total_us += pair[1].ts_us - pair[0].ts_us;
        }
        let modeled_us = (rep.total_gpu() + rep.translate_secs) * 1e6;
        assert!(
            (total_us - modeled_us).abs() < 1e-3,
            "span total {total_us} vs modeled {modeled_us}"
        );
    }

    #[test]
    fn translation_cost_is_minor() {
        let mut pts = uniform_cube(5000, 9, 0);
        randomize_densities(&mut pts, 1, 10);
        let dev = DeviceSpec::tesla_s1070();
        let rep = run_gpu_fmm(pts, 100, 4, &dev, false);
        // The paper's claim: translation is a small fraction of the
        // modeled evaluation.
        assert!(
            rep.translate_secs < rep.total_cpu2009(),
            "translation {} vs cpu eval {}",
            rep.translate_secs,
            rep.total_cpu2009()
        );
    }
}
