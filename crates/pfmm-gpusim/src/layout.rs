//! Host-side data-structure translation: pointer-based LET + interaction
//! lists → the padded, coalescing-friendly flat arrays the GPU kernels
//! stream (paper §IV: "carefully constructed data structure
//! transformations ... whose cost we show is minor").
//!
//! Targets and sources are padded to the thread-block size `b`, so every
//! global-memory tile read is a full coalesced transaction; padded source
//! slots carry zero density (they contribute exactly nothing through the
//! kernel's multiply-accumulate) and padded target lanes compute garbage
//! that is never read back — the same waste a real CUDA implementation
//! accepts in exchange for coalescing.
//!
//! The CPU near-field engine (`pfmm_core::nearfield`) applies the same
//! discipline at f64/lane-width granularity: identical source-box
//! occupancy, identical U-list rows, padding as zero-density sentinels —
//! only the pad unit (`LANE` vs thread block) and the plane layout
//! (SoA vs AoS `[f32; 4]`) differ.

use std::time::Instant;

use pfmm_tree::{Let, Lists};

/// Padded flat arrays for the GPU FMM kernels, plus the measured cost of
/// building them.
pub struct GpuLayout {
    /// Thread-block size `b` (threads per block, sources per tile).
    pub block: usize,

    /// Source box id for each LET octant (`-1` if the octant holds no
    /// points).
    pub src_box_of_oct: Vec<i32>,
    /// Per source box: offset into the padded source arrays (a multiple
    /// of `b`).
    pub src_off: Vec<u32>,
    /// Per source box: real (unpadded) source count.
    pub src_cnt: Vec<u32>,
    /// Padded sources: x, y, z, density.
    pub src: Vec<[f32; 4]>,

    /// Per target box: the LET octant it evaluates.
    pub tgt_oct: Vec<u32>,
    /// Per target box: offset into the padded target arrays.
    pub tgt_off: Vec<u32>,
    /// Per target box: real target count.
    pub tgt_cnt: Vec<u32>,
    /// Padded target positions.
    pub tgt: Vec<[f32; 3]>,

    /// U-list in CSR over target boxes; entries are source box ids.
    pub ulist_off: Vec<u32>,
    /// U-list entries.
    pub ulist: Vec<u32>,

    /// Wall-clock seconds spent building this layout (the paper's
    /// "translation" cost).
    pub translate_secs: f64,
    /// Bytes that must cross PCIe to the device.
    pub bytes_to_device: u64,
}

impl GpuLayout {
    /// Build the layout from a LET and its lists.
    ///
    /// # Panics
    /// Panics if `block` is zero.
    pub fn build(l: &Let, lists: &Lists, block: usize) -> GpuLayout {
        assert!(block > 0);
        let t0 = Instant::now();
        let pad = |n: usize| n.div_ceil(block) * block;

        // Source boxes: every leaf with points (owned or ghost) — U-list
        // sources can be any leaf in the LET.
        let mut src_box_of_oct = vec![-1i32; l.len()];
        let mut src_off = Vec::new();
        let mut src_cnt = Vec::new();
        let mut src: Vec<[f32; 4]> = Vec::new();
        #[allow(clippy::needless_range_loop)] // i indexes the LET and the box map
        for i in 0..l.len() {
            let pts = l.points_of(i);
            if pts.is_empty() || !l.is_leaf[i] {
                continue;
            }
            src_box_of_oct[i] = src_off.len() as i32;
            src_off.push(src.len() as u32);
            src_cnt.push(pts.len() as u32);
            for p in pts {
                src.push([
                    p.pos[0] as f32,
                    p.pos[1] as f32,
                    p.pos[2] as f32,
                    p.den[0] as f32,
                ]);
            }
            // Zero-density padding far outside the cube: contributes 0
            // and cannot collide with a real target position.
            src.resize(pad(src.len()), [-1.0e9, -1.0e9, -1.0e9, 0.0]);
        }

        // Target boxes: owned leaves with points.
        let mut tgt_oct = Vec::new();
        let mut tgt_off = Vec::new();
        let mut tgt_cnt = Vec::new();
        let mut tgt: Vec<[f32; 3]> = Vec::new();
        let mut ulist_off = vec![0u32];
        let mut ulist = Vec::new();
        for i in 0..l.len() {
            if !l.owned[i] {
                continue;
            }
            let pts = l.points_of(i);
            if pts.is_empty() {
                continue;
            }
            tgt_oct.push(i as u32);
            tgt_off.push(tgt.len() as u32);
            tgt_cnt.push(pts.len() as u32);
            for p in pts {
                tgt.push([p.pos[0] as f32, p.pos[1] as f32, p.pos[2] as f32]);
            }
            tgt.resize(pad(tgt.len()), [2.0e9, 2.0e9, 2.0e9]);
            for &ai in lists.u.row(i) {
                let sb = src_box_of_oct[ai as usize];
                if sb >= 0 {
                    ulist.push(sb as u32);
                }
            }
            ulist_off.push(ulist.len() as u32);
        }

        let bytes_to_device = (src.len() * 16 + tgt.len() * 12 + ulist.len() * 4) as u64;
        GpuLayout {
            block,
            src_box_of_oct,
            src_off,
            src_cnt,
            src,
            tgt_oct,
            tgt_off,
            tgt_cnt,
            tgt,
            ulist_off,
            ulist,
            translate_secs: t0.elapsed().as_secs_f64(),
            bytes_to_device,
        }
    }

    /// Number of target boxes.
    pub fn num_tgt_boxes(&self) -> usize {
        self.tgt_oct.len()
    }

    /// Number of source boxes.
    pub fn num_src_boxes(&self) -> usize {
        self.src_off.len()
    }

    /// Padded source range of a source box.
    pub fn src_range(&self, b: usize) -> std::ops::Range<usize> {
        let start = self.src_off[b] as usize;
        let end = if b + 1 < self.src_off.len() {
            self.src_off[b + 1] as usize
        } else {
            self.src.len()
        };
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_mpisim::run;
    use pfmm_tree::{build_let, build_lists, points_to_octree, PointRec};

    fn small_let(n: usize, q: usize) -> (Let, Lists) {
        let pts: Vec<PointRec> = (0..n)
            .map(|i| {
                let f = i as f64 / n as f64;
                PointRec::scalar([f, (f * 7.3) % 1.0, (f * 3.1) % 1.0], 1.0 + f, i as u64)
            })
            .collect();
        run(1, |c| {
            let t = points_to_octree(c, pts.clone(), q);
            let l = build_let(c, &t);
            let lists = build_lists(&l);
            (l, lists)
        })
        .pop()
        .expect("one rank")
    }

    #[test]
    fn padding_is_block_aligned() {
        let (l, lists) = small_let(500, 16);
        let lay = GpuLayout::build(&l, &lists, 64);
        assert_eq!(lay.src.len() % 64, 0);
        assert_eq!(lay.tgt.len() % 64, 0);
        for b in 0..lay.num_src_boxes() {
            assert_eq!(lay.src_range(b).len() % 64, 0);
            assert!(lay.src_range(b).len() >= lay.src_cnt[b] as usize);
        }
    }

    #[test]
    fn all_points_present() {
        let (l, lists) = small_let(300, 8);
        let lay = GpuLayout::build(&l, &lists, 32);
        let real_src: u32 = lay.src_cnt.iter().sum();
        assert_eq!(real_src as usize, 300);
        let real_tgt: u32 = lay.tgt_cnt.iter().sum();
        assert_eq!(real_tgt as usize, 300);
    }

    #[test]
    fn padded_sources_have_zero_density() {
        let (l, lists) = small_let(100, 7);
        let lay = GpuLayout::build(&l, &lists, 64);
        for b in 0..lay.num_src_boxes() {
            let r = lay.src_range(b);
            for j in r.start + lay.src_cnt[b] as usize..r.end {
                assert_eq!(lay.src[j][3], 0.0);
            }
        }
    }

    #[test]
    fn ulist_references_valid_boxes() {
        let (l, lists) = small_let(400, 10);
        let lay = GpuLayout::build(&l, &lists, 64);
        for &sb in &lay.ulist {
            assert!((sb as usize) < lay.num_src_boxes());
        }
        // Every target box includes itself in its U-list.
        for tb in 0..lay.num_tgt_boxes() {
            let oct = lay.tgt_oct[tb] as usize;
            let self_sb = lay.src_box_of_oct[oct];
            assert!(self_sb >= 0);
            let row = &lay.ulist[lay.ulist_off[tb] as usize..lay.ulist_off[tb + 1] as usize];
            assert!(row.contains(&(self_sb as u32)));
        }
    }

    #[test]
    fn matches_cpu_nearfield_layout() {
        // The CPU tiled near-field engine is the same data-structure
        // transformation at a different pad unit: same source-box
        // occupancy, same real counts, same target boxes, same U-list
        // rows (as sets — NearField sorts its rows, GpuLayout keeps
        // traversal order).
        let (l, lists) = small_let(600, 12);
        let lay = GpuLayout::build(&l, &lists, 64);
        let data = pfmm_core::exec::EvalData::new(&l, 1);
        let nf = pfmm_core::NearField::build(&l, &lists, &data.leaf_pos, &data.leaf_den, 1);

        assert_eq!(nf.num_src_boxes(), lay.num_src_boxes());
        assert_eq!(nf.src_box_of_oct, lay.src_box_of_oct);
        assert_eq!(nf.src_cnt, lay.src_cnt);
        assert_eq!(nf.num_tgt_boxes(), lay.num_tgt_boxes());
        assert_eq!(nf.tgt_oct, lay.tgt_oct);
        assert_eq!(nf.tgt_cnt, lay.tgt_cnt);
        assert_eq!(nf.ulist_off, lay.ulist_off);
        for tb in 0..nf.num_tgt_boxes() {
            let r = nf.ulist_off[tb] as usize..nf.ulist_off[tb + 1] as usize;
            let mut gpu_row = lay.ulist[r.clone()].to_vec();
            gpu_row.sort_unstable();
            assert_eq!(&nf.ulist[r], &gpu_row[..]);
        }
        // Both pad with zero density; only the pad unit differs.
        for b in 0..nf.num_src_boxes() {
            let r = nf.src_range(b);
            for j in r.start + nf.src_cnt[b] as usize..r.end {
                assert_eq!(nf.sden[j], 0.0);
            }
        }
    }

    #[test]
    fn translation_time_recorded() {
        let (l, lists) = small_let(1000, 20);
        let lay = GpuLayout::build(&l, &lists, 128);
        assert!(lay.translate_secs > 0.0);
        assert!(lay.bytes_to_device > 0);
    }
}
