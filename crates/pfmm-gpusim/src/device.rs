//! Device model: Tesla-S1070-era throughput parameters, per-kernel
//! traffic tallies, and the time model.
//!
//! The model is deliberately coarse — a roofline with a launch overhead
//! and an occupancy ramp — because the paper's GPU conclusions are
//! roofline conclusions: the U-list does `O(b²)` flops per `O(b)` loads
//! and runs near peak, the V-list Hadamard does 2 flops per byte and is
//! bandwidth-bound, S2U/D2T sit in between.

/// One GPU's worth of throughput parameters.
#[derive(Copy, Clone, Debug)]
pub struct DeviceSpec {
    /// Display name.
    pub name: &'static str,
    /// Sustained single-precision rate for interaction-style kernels
    /// (multiply-add chains with an rsqrt), flops/s.
    pub flops_per_sec: f64,
    /// Sustained global-memory bandwidth for coalesced access, bytes/s.
    pub mem_bw: f64,
    /// Effective bytes moved per *uncoalesced* 4-byte access (the GT200
    /// serializes a 32-byte segment per stray access).
    pub uncoalesced_segment: f64,
    /// Kernel launch overhead, seconds.
    pub launch_overhead: f64,
    /// Number of streaming multiprocessors (occupancy ramp: fewer blocks
    /// than `2 × sms` underutilizes the device).
    pub sms: usize,
    /// Host↔device transfer bandwidth, bytes/s (PCIe of the era).
    pub pcie_bw: f64,
}

impl DeviceSpec {
    /// One GPU of an NVIDIA Tesla S1070 (GT200, the paper's Lincoln
    /// accelerator): 240 SPs at 1.44 GHz ≈ 345 GF/s single-precision
    /// multiply-add peak; ~102 GB/s GDDR3; PCIe-1.1 x8 per GPU pair.
    pub fn tesla_s1070() -> DeviceSpec {
        DeviceSpec {
            name: "Tesla S1070 (1 GPU)",
            flops_per_sec: 250e9,
            mem_bw: 85e9,
            uncoalesced_segment: 32.0,
            launch_overhead: 8e-6,
            sms: 30,
            pcie_bw: 2.0e9,
        }
    }

    /// The paper's CPU reference rate: "the single core CPU performance
    /// for the evaluation part is roughly 500 MFlops/s" (§VI). Used to
    /// model the 2009 CPU-only comparison from measured flop counts.
    pub fn cpu_2009_flops_per_sec() -> f64 {
        0.5e9
    }

    /// Modeled execution time of a kernel with the given aggregate stats:
    /// roofline max of compute and memory time, divided by the occupancy
    /// ramp, plus launch overhead.
    pub fn kernel_time(&self, s: &KernelStats) -> f64 {
        let t_flops = s.tally.flops as f64 / self.flops_per_sec;
        // Every stray 4-byte access drags a whole segment across the bus.
        let bytes = s.tally.gmem_coalesced as f64
            + s.tally.gmem_uncoalesced as f64 * self.uncoalesced_segment;
        let t_mem = bytes / self.mem_bw;
        let occupancy = ((s.blocks as f64) / (2.0 * self.sms as f64)).clamp(0.05, 1.0);
        t_flops.max(t_mem) / occupancy + self.launch_overhead
    }

    /// Modeled host↔device transfer time for `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.pcie_bw + 10e-6
    }
}

/// Per-block (accumulated per-kernel) traffic counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Single-precision floating point operations.
    pub flops: u64,
    /// Bytes read/written through coalesced global transactions.
    pub gmem_coalesced: u64,
    /// Number of uncoalesced 4-byte global accesses.
    pub gmem_uncoalesced: u64,
    /// Shared-memory accesses (4-byte).
    pub smem_accesses: u64,
}

impl Tally {
    /// Fold another tally into this one.
    pub fn merge(&mut self, other: &Tally) {
        self.flops += other.flops;
        self.gmem_coalesced += other.gmem_coalesced;
        self.gmem_uncoalesced += other.gmem_uncoalesced;
        self.smem_accesses += other.smem_accesses;
    }
}

/// Aggregate statistics of one kernel launch.
#[derive(Copy, Clone, Debug, Default)]
pub struct KernelStats {
    /// Summed block tallies.
    pub tally: Tally,
    /// Number of thread blocks launched.
    pub blocks: usize,
}

/// Execute `nblocks` independent thread blocks on the host thread pool,
/// merging per-block tallies. `f(block_idx, &mut Tally)` performs the
/// block's real computation; blocks must write disjoint outputs (enforced
/// by the caller's layout, exactly as on a real GPU).
pub fn launch_blocks<F>(nblocks: usize, f: F) -> KernelStats
where
    F: Fn(usize, &mut Tally) + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let threads = threads.min(nblocks.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let tallies = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move |_| {
                    let mut t = Tally::default();
                    loop {
                        let b = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if b >= nblocks {
                            break;
                        }
                        f(b, &mut t);
                    }
                    t
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gpu block worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("gpu launch scope");
    let mut total = Tally::default();
    for t in &tallies {
        total.merge(t);
    }
    KernelStats {
        tally: total,
        blocks: nblocks,
    }
}

/// Like [`launch_blocks`], but each block also produces an output value;
/// outputs are returned in block order (blocks write disjoint results, as
/// on the device).
pub fn launch_blocks_map<T, F>(nblocks: usize, f: F) -> (Vec<T>, KernelStats)
where
    T: Send,
    F: Fn(usize, &mut Tally) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let threads = threads.min(nblocks.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move |_| {
                    let mut t = Tally::default();
                    let mut out = Vec::new();
                    loop {
                        let b = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if b >= nblocks {
                            break;
                        }
                        out.push((b, f(b, &mut t)));
                    }
                    (out, t)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gpu block worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("gpu launch scope");
    let mut total = Tally::default();
    let mut ordered: Vec<Option<T>> = (0..nblocks).map(|_| None).collect();
    for (outs, t) in results {
        total.merge(&t);
        for (b, v) in outs {
            ordered[b] = Some(v);
        }
    }
    let outputs = ordered
        .into_iter()
        .map(|o| o.expect("every block executed"))
        .collect();
    (
        outputs,
        KernelStats {
            tally: total,
            blocks: nblocks,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_covers_all_blocks() {
        let hits = std::sync::Mutex::new(vec![false; 100]);
        let stats = launch_blocks(100, |b, t| {
            hits.lock().expect("mutex")[b] = true;
            t.flops += 1;
        });
        assert!(hits.lock().expect("mutex").iter().all(|&h| h));
        assert_eq!(stats.tally.flops, 100);
        assert_eq!(stats.blocks, 100);
    }

    #[test]
    fn compute_bound_kernel_time() {
        let d = DeviceSpec::tesla_s1070();
        // 1e9 flops, tiny memory traffic, plenty of blocks.
        let s = KernelStats {
            tally: Tally {
                flops: 1_000_000_000,
                gmem_coalesced: 1000,
                ..Default::default()
            },
            blocks: 1000,
        };
        let t = d.kernel_time(&s);
        let expect = 1e9 / d.flops_per_sec + d.launch_overhead;
        assert!((t - expect).abs() < 1e-9, "{t} vs {expect}");
    }

    #[test]
    fn bandwidth_bound_kernel_time() {
        let d = DeviceSpec::tesla_s1070();
        // 2 flops/byte × 1 GB — far below the machine balance point.
        let s = KernelStats {
            tally: Tally {
                flops: 2_000_000_000,
                gmem_coalesced: 1_000_000_000,
                ..Default::default()
            },
            blocks: 1000,
        };
        let t = d.kernel_time(&s);
        assert!(t > 1e9 / d.mem_bw * 0.99, "memory time dominates");
    }

    #[test]
    fn uncoalesced_costs_a_segment() {
        let d = DeviceSpec::tesla_s1070();
        let coalesced = KernelStats {
            tally: Tally {
                gmem_coalesced: 4_000_000,
                ..Default::default()
            },
            blocks: 1000,
        };
        let uncoalesced = KernelStats {
            tally: Tally {
                gmem_uncoalesced: 1_000_000,
                ..Default::default()
            },
            blocks: 1000,
        };
        // Same 4 MB of payload, 8× the modeled cost when uncoalesced.
        let ratio = d.kernel_time(&uncoalesced) / d.kernel_time(&coalesced);
        assert!(ratio > 4.0, "uncoalesced penalty visible: {ratio}");
    }

    #[test]
    fn low_occupancy_penalized() {
        let d = DeviceSpec::tesla_s1070();
        let few = KernelStats {
            tally: Tally {
                flops: 1_000_000_000,
                ..Default::default()
            },
            blocks: 6,
        };
        let many = KernelStats {
            tally: few.tally,
            blocks: 600,
        };
        assert!(d.kernel_time(&few) > 5.0 * d.kernel_time(&many));
    }
}
