//! The GPU FMM kernels of §IV, single precision, with per-block traffic
//! tallies.
//!
//! These follow the paper's CUDA structure kernel by kernel:
//!
//! - [`uli`] — Algorithm 4: one thread block per tile of `b` target
//!   points; source boxes stream through shared memory in `b`-point
//!   tiles; self-interactions are suppressed with the IEEE
//!   `max(NaN, x) = x` trick instead of a branch.
//! - [`s2u`] — source-to-multipole: check-surface coordinates are
//!   regenerated from the octant center/level "using information that is
//!   permanently resident in the shared memory", so the only global
//!   traffic is the box's points and the (launch-wide) UC2E matrix.
//! - [`d2t`] — local-to-target: symmetric to `s2u`.
//! - [`vli_hadamard`] — the diagonal (frequency-space) V-list translation:
//!   one complex multiply-add per grid cell per interaction, the
//!   bandwidth-bound phase ("the least efficient in the GPU as the ratio
//!   between computation and memory fetches is small").
//! - [`wli`] / [`xli`] — the W/X lists, which the paper left on the CPU
//!   ("our ongoing work includes transferring the W,X-lists on the GPU");
//!   implemented here as the stated future work and selectable in the
//!   pipeline via `GpuOptions::wx_on_gpu`.
//!
//! The GPU path is Laplace-specific, like the paper's ("For the GPU
//! results, we used the Laplacian kernel").

use crate::device::{launch_blocks_map, KernelStats};
use crate::layout::GpuLayout;

const INV_4PI_F32: f32 = 1.0 / (4.0 * std::f32::consts::PI);

/// One pairwise Laplace interaction with the NaN-max self-suppression
/// (Algorithm 4 step 8 + the IEEE trick of §IV).
#[inline]
fn interact(t: [f32; 3], s: [f32; 4]) -> f32 {
    let dx = t[0] - s[0];
    let dy = t[1] - s[1];
    let dz = t[2] - s[2];
    let r2 = dx * dx + dy * dy + dz * dz;
    let inv = 1.0f32 / r2.sqrt(); // +inf at zero distance
                                  // Intentional self-subtraction: inf - inf = NaN, max(NaN, 0) = 0.
    #[allow(clippy::eq_op)]
    let inv = (inv + (inv - inv)).max(0.0);
    s[3] * inv
}

/// Algorithm 4: the direct U-list sum. Returns potentials aligned with
/// the layout's padded target array.
pub fn uli(lay: &GpuLayout) -> (Vec<f32>, KernelStats) {
    let b = lay.block;
    // One block per b-wide tile of each target box.
    let mut blocks: Vec<(usize, usize)> = Vec::new();
    for tb in 0..lay.num_tgt_boxes() {
        let start = lay.tgt_off[tb] as usize;
        let end = if tb + 1 < lay.num_tgt_boxes() {
            lay.tgt_off[tb + 1] as usize
        } else {
            lay.tgt.len()
        };
        for tile in (start..end).step_by(b) {
            blocks.push((tb, tile));
        }
    }

    let (tiles, stats) = launch_blocks_map(blocks.len(), |blk, tally| {
        let (tb, t0) = blocks[blk];
        let tgt = &lay.tgt[t0..t0 + b];
        tally.gmem_coalesced += (b * 12) as u64; // target loads
        let mut acc = vec![0.0f32; b];
        let row = &lay.ulist[lay.ulist_off[tb] as usize..lay.ulist_off[tb + 1] as usize];
        for &sb in row {
            let r = lay.src_range(sb as usize);
            for tile_s in r.clone().step_by(b) {
                // Cooperative shared-memory load of one source tile.
                let srcs = &lay.src[tile_s..tile_s + b];
                tally.gmem_coalesced += (b * 16) as u64;
                tally.smem_accesses += (b + b * b) as u64;
                for (i, &t) in tgt.iter().enumerate() {
                    let mut a = 0.0f32;
                    for &s in srcs {
                        a += interact(t, s);
                    }
                    acc[i] += a;
                }
                tally.flops += (20 * b * b) as u64;
            }
        }
        for a in &mut acc {
            *a *= INV_4PI_F32;
        }
        tally.gmem_coalesced += (b * 4) as u64; // potential store
        (t0, acc)
    });

    let mut out = vec![0.0f32; lay.tgt.len()];
    for (t0, acc) in tiles {
        out[t0..t0 + lay.block].copy_from_slice(&acc);
    }
    (out, stats)
}

/// A leaf box descriptor for the surface kernels.
#[derive(Copy, Clone, Debug)]
pub struct SurfBox {
    /// Octant center.
    pub center: [f32; 3],
    /// Octant half-width.
    pub radius: f32,
    /// Offset into the padded point array.
    pub pt_off: u32,
    /// Padded point count (multiple of the block size).
    pub pt_len: u32,
    /// Homogeneous per-level operator scale.
    pub scale: f32,
}

/// Source-to-multipole: for every box, evaluate the upward check
/// potential from its points at surface coordinates regenerated
/// in-register, then apply the (launch-constant) UC2E matrix.
///
/// `check_rel` is the check-surface template (unit radius), `uc2e` the
/// `n×n` row-major conversion matrix; returns `n` upward-equivalent
/// densities per box.
pub fn s2u(
    boxes: &[SurfBox],
    src: &[[f32; 4]],
    check_rel: &[[f32; 3]],
    uc2e: &[f32],
) -> (Vec<f32>, KernelStats) {
    let n = check_rel.len();
    debug_assert_eq!(uc2e.len(), n * n);
    let (per_box, mut stats) = launch_blocks_map(boxes.len(), |blk, tally| {
        let bx = boxes[blk];
        let pts = &src[bx.pt_off as usize..(bx.pt_off + bx.pt_len) as usize];
        tally.gmem_coalesced += (pts.len() * 16) as u64 + 16; // points + box record
                                                              // Check potential; surface points generated from (center, radius).
        let mut ucheck = vec![0.0f32; n];
        for (t, rel) in ucheck.iter_mut().zip(check_rel) {
            let x = [
                bx.center[0] + bx.radius * rel[0],
                bx.center[1] + bx.radius * rel[1],
                bx.center[2] + bx.radius * rel[2],
            ];
            let mut a = 0.0f32;
            for &s in pts {
                a += interact(x, s);
            }
            *t = a * INV_4PI_F32;
        }
        tally.flops += (20 * pts.len() * n) as u64;
        // u = scale * UC2E * ucheck.
        let mut u = vec![0.0f32; n];
        for (i, ui) in u.iter_mut().enumerate() {
            let row = &uc2e[i * n..(i + 1) * n];
            let mut a = 0.0f32;
            for (m, c) in row.iter().zip(&ucheck) {
                a += m * c;
            }
            *ui = bx.scale * a;
        }
        tally.flops += (2 * n * n) as u64;
        tally.smem_accesses += (2 * n * n) as u64;
        tally.gmem_coalesced += (n * 4) as u64; // store u
        u
    });
    // The UC2E matrix crosses global memory once per launch (constant
    // cache afterwards).
    stats.tally.gmem_coalesced += (n * n * 4) as u64;
    (per_box.concat(), stats)
}

/// Local-to-target: evaluate each box's downward equivalent density (on
/// surface coordinates regenerated in-register) at the box's own targets.
///
/// `equiv_rel` is the downward-equivalent surface template (unit radius);
/// `d` holds `n` densities per box; returns potentials aligned with the
/// padded target array section of each box.
pub fn d2t(
    boxes: &[SurfBox],
    tgt: &[[f32; 3]],
    equiv_rel: &[[f32; 3]],
    d: &[f32],
) -> (Vec<f32>, KernelStats) {
    let n = equiv_rel.len();
    let (per_box, stats) = launch_blocks_map(boxes.len(), |blk, tally| {
        let bx = boxes[blk];
        let targets = &tgt[bx.pt_off as usize..(bx.pt_off + bx.pt_len) as usize];
        let dens = &d[blk * n..(blk + 1) * n];
        tally.gmem_coalesced += (targets.len() * 12 + n * 4) as u64 + 16;
        let mut out = vec![0.0f32; targets.len()];
        for (o, &t) in out.iter_mut().zip(targets) {
            let mut a = 0.0f32;
            for (rel, &q) in equiv_rel.iter().zip(dens) {
                let s = [
                    bx.center[0] + bx.radius * rel[0],
                    bx.center[1] + bx.radius * rel[1],
                    bx.center[2] + bx.radius * rel[2],
                    q,
                ];
                a += interact(t, s);
            }
            *o = a * INV_4PI_F32;
        }
        tally.flops += (20 * targets.len() * n) as u64;
        tally.gmem_coalesced += (targets.len() * 4) as u64;
        out
    });
    (per_box.concat(), stats)
}

/// W-list on the GPU — the paper's stated *ongoing work* ("transferring
/// the W,X-lists on the GPU"), implemented here as the natural extension
/// of [`d2t`]: for each target box, stream the upward-equivalent
/// densities of its W-list octants (surface coordinates regenerated
/// in-register from each source box descriptor) and accumulate at the
/// box's targets.
///
/// `wlist` is a CSR over target boxes of indices into `src_boxes`/`u`
/// (one `n`-density block per W source, `equiv_rel` the upward-equivalent
/// template).
pub fn wli(
    tgt_boxes: &[SurfBox],
    tgt: &[[f32; 3]],
    wlist_off: &[u32],
    wlist: &[u32],
    src_boxes: &[SurfBox],
    equiv_rel: &[[f32; 3]],
    u: &[f32],
) -> (Vec<f32>, KernelStats) {
    let n = equiv_rel.len();
    let (per_box, stats) = launch_blocks_map(tgt_boxes.len(), |blk, tally| {
        let bx = tgt_boxes[blk];
        let targets = &tgt[bx.pt_off as usize..(bx.pt_off + bx.pt_len) as usize];
        let mut out = vec![0.0f32; targets.len()];
        tally.gmem_coalesced += (targets.len() * 12) as u64 + 16;
        for &w in &wlist[wlist_off[blk] as usize..wlist_off[blk + 1] as usize] {
            let sb = src_boxes[w as usize];
            let dens = &u[w as usize * n..(w as usize + 1) * n];
            tally.gmem_coalesced += (n * 4) as u64 + 16; // densities + box record
            for (o, &t) in out.iter_mut().zip(targets) {
                let mut a = 0.0f32;
                for (rel, &q) in equiv_rel.iter().zip(dens) {
                    let s = [
                        sb.center[0] + sb.radius * rel[0],
                        sb.center[1] + sb.radius * rel[1],
                        sb.center[2] + sb.radius * rel[2],
                        q,
                    ];
                    a += interact(t, s);
                }
                *o += a;
            }
            tally.flops += (20 * targets.len() * n) as u64;
        }
        for o in &mut out {
            *o *= INV_4PI_F32;
        }
        tally.gmem_coalesced += (targets.len() * 4) as u64;
        out
    });
    (per_box.concat(), stats)
}

/// X-list on the GPU — the dual of [`wli`]: for each target octant,
/// stream the *source points* of its X-list leaves and accumulate the
/// potential at the target's downward-check surface coordinates
/// (regenerated in-register).
///
/// `xlist` is a CSR over target octant descriptors of source-box ids in
/// the padded point layout; returns `n` check values per target.
pub fn xli(
    tgt_boxes: &[SurfBox],
    xlist_off: &[u32],
    xlist: &[u32],
    src: &[[f32; 4]],
    src_off: &(dyn Fn(usize) -> std::ops::Range<usize> + Sync),
    check_rel: &[[f32; 3]],
) -> (Vec<f32>, KernelStats) {
    let n = check_rel.len();
    let (per_box, stats) = launch_blocks_map(tgt_boxes.len(), |blk, tally| {
        let bx = tgt_boxes[blk];
        let mut out = vec![0.0f32; n];
        tally.gmem_coalesced += 16;
        for &sbid in &xlist[xlist_off[blk] as usize..xlist_off[blk + 1] as usize] {
            let pts = &src[src_off(sbid as usize)];
            tally.gmem_coalesced += (pts.len() * 16) as u64;
            tally.smem_accesses += (pts.len() + pts.len() * n) as u64;
            for (o, rel) in out.iter_mut().zip(check_rel) {
                let x = [
                    bx.center[0] + bx.radius * rel[0],
                    bx.center[1] + bx.radius * rel[1],
                    bx.center[2] + bx.radius * rel[2],
                ];
                let mut a = 0.0f32;
                for &s in pts {
                    a += interact(x, s);
                }
                *o += a;
            }
            tally.flops += (20 * pts.len() * n) as u64;
        }
        for o in &mut out {
            *o *= INV_4PI_F32;
        }
        tally.gmem_coalesced += (n * 4) as u64;
        out
    });
    (per_box.concat(), stats)
}

/// The frequency-space V-list translation: for each target octant,
/// `acc += scale · k̂ ⊙ û` over its interaction pairs. Spectra are
/// interleaved `[re, im]` pairs of length `2g`; returns one accumulator
/// grid per target.
pub fn vli_hadamard(
    g: usize,
    pairs_off: &[u32],
    pair_khat: &[u32],
    pair_uhat: &[u32],
    pair_scale: &[f32],
    khats: &[f32],
    uhats: &[f32],
) -> (Vec<f32>, KernelStats) {
    let ntgt = pairs_off.len() - 1;
    let (per_tgt, stats) = launch_blocks_map(ntgt, |tb, tally| {
        let mut acc = vec![0.0f32; 2 * g];
        for p in pairs_off[tb] as usize..pairs_off[tb + 1] as usize {
            let kh = &khats[pair_khat[p] as usize * 2 * g..(pair_khat[p] as usize + 1) * 2 * g];
            let uh = &uhats[pair_uhat[p] as usize * 2 * g..(pair_uhat[p] as usize + 1) * 2 * g];
            let s = pair_scale[p];
            tally.gmem_coalesced += (2 * 2 * g * 4) as u64; // two spectra
            for i in 0..g {
                let (kr, ki) = (kh[2 * i], kh[2 * i + 1]);
                let (ur, ui) = (uh[2 * i], uh[2 * i + 1]);
                acc[2 * i] += s * (kr * ur - ki * ui);
                acc[2 * i + 1] += s * (kr * ui + ki * ur);
            }
            tally.flops += (10 * g) as u64;
        }
        tally.gmem_coalesced += (2 * g * 4) as u64; // accumulator store
        acc
    });
    (per_tgt.concat(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfmm_kernels::direct_eval_f32;
    use pfmm_mpisim::run;
    use pfmm_tree::{build_let, build_lists, points_to_octree, PointRec};

    fn layout_of(n: usize, q: usize, block: usize) -> (GpuLayout, Vec<PointRec>) {
        let pts: Vec<PointRec> = (0..n)
            .map(|i| {
                let f = (i as f64 * 0.618_033_98) % 1.0;
                let g = (i as f64 * 0.324_717_96) % 1.0;
                let h = (i as f64 * 0.122_561_87) % 1.0;
                PointRec::scalar([f, g, h], (i % 5) as f64 - 2.0, i as u64)
            })
            .collect();
        let lay = run(1, |c| {
            let t = points_to_octree(c, pts.clone(), q);
            let l = build_let(c, &t);
            let lists = build_lists(&l);
            GpuLayout::build(&l, &lists, block)
        })
        .pop()
        .expect("one rank");
        (lay, pts)
    }

    #[test]
    fn interact_skips_self_without_branch() {
        let p = [0.25f32, 0.5, 0.75];
        assert_eq!(interact(p, [p[0], p[1], p[2], 9.0]), 0.0);
        let v = interact(p, [p[0] + 0.5, p[1], p[2], 2.0]);
        assert!((v - 4.0).abs() < 1e-6);
    }

    /// The GPU U-list sum for a one-leaf tree (everything direct) must
    /// match the reference f32 direct sum exactly.
    #[test]
    fn uli_matches_direct_on_single_leaf() {
        let (lay, pts) = layout_of(50, 64, 32);
        assert_eq!(lay.num_tgt_boxes(), 1);
        let (out, stats) = uli(&lay);
        let t32: Vec<[f32; 3]> = pts.iter().map(|p| p.pos.map(|v| v as f32)).collect();
        let s32: Vec<[f32; 3]> = t32.clone();
        let d32: Vec<f32> = pts.iter().map(|p| p.den[0] as f32).collect();
        let want = direct_eval_f32(&t32, &s32, &d32);
        // Padded targets follow the real ones; compare real lanes against
        // the layout's own point order.
        let l_pts: Vec<(usize, f32)> = (0..lay.tgt_cnt[0] as usize)
            .map(|j| (j, out[lay.tgt_off[0] as usize + j]))
            .collect();
        for (j, got) in l_pts {
            // The layout's target order equals the Morton-sorted order;
            // identify via position.
            let pos = lay.tgt[lay.tgt_off[0] as usize + j];
            let gi = t32
                .iter()
                .position(|p| (p[0] - pos[0]).abs() < 1e-7 && (p[1] - pos[1]).abs() < 1e-7)
                .expect("target found");
            assert!(
                (got - want[gi]).abs() < 1e-3 * want[gi].abs().max(1.0),
                "{got} vs {}",
                want[gi]
            );
        }
        assert!(stats.tally.flops > 0);
        assert!(stats.tally.gmem_coalesced > 0);
    }

    /// On a refined tree, U-list potentials must match a brute-force
    /// near-field evaluation over the same boxes.
    #[test]
    fn uli_matches_per_box_reference() {
        let (lay, _) = layout_of(400, 20, 64);
        assert!(lay.num_tgt_boxes() > 1);
        let (out, _) = uli(&lay);
        for tb in 0..lay.num_tgt_boxes() {
            let row = &lay.ulist[lay.ulist_off[tb] as usize..lay.ulist_off[tb + 1] as usize];
            for j in 0..lay.tgt_cnt[tb] as usize {
                let t = lay.tgt[lay.tgt_off[tb] as usize + j];
                let mut want = 0.0f32;
                for &sb in row {
                    for s in &lay.src[lay.src_range(sb as usize)] {
                        want += interact(t, *s);
                    }
                }
                want *= INV_4PI_F32;
                let got = out[lay.tgt_off[tb] as usize + j];
                assert!((got - want).abs() < 1e-4 * want.abs().max(1.0));
            }
        }
    }

    #[test]
    fn uli_is_compute_bound() {
        let (lay, _) = layout_of(2000, 100, 64);
        let (_, stats) = uli(&lay);
        let intensity = stats.tally.flops as f64 / stats.tally.gmem_coalesced as f64;
        // The paper's design point: O(b²) flops per O(b) loads.
        assert!(intensity > 10.0, "arithmetic intensity {intensity}");
    }

    /// The S2U kernel must agree with the f64 operator path: check
    /// potential from the box's points, then the UC2E solve.
    #[test]
    fn s2u_matches_f64_operators() {
        use pfmm_core::ops::Ops;
        use pfmm_kernels::{direct_eval, Laplace};
        use std::sync::Arc;

        let order = 4;
        let ops = Ops::new(Arc::new(Laplace), order, 1e-12);
        let n = ops.n_surf();
        let check_rel: Vec<[f32; 3]> = pfmm_core::surface::surface_points(
            order,
            &[0.0; 3],
            1.0,
            pfmm_core::surface::RAD_OUTER,
        )
        .iter()
        .map(|p| p.map(|v| v as f32))
        .collect();
        let (uc2e0, _) = ops.uc2e(0);
        let uc2e32: Vec<f32> = uc2e0.as_slice().iter().map(|&v| v as f32).collect();

        // One box at level 2 with 5 points (padded to 32).
        let center = [0.375f64, 0.625, 0.125];
        let radius = 0.125f64;
        let pts64: Vec<[f64; 3]> = (0..5)
            .map(|i| {
                let t = i as f64 / 5.0;
                [
                    center[0] + radius * (0.8 * t - 0.4),
                    center[1] + radius * (0.6 - t),
                    center[2] + radius * (t * t - 0.5),
                ]
            })
            .collect();
        let den64: Vec<f64> = (0..5).map(|i| 1.0 - 0.4 * i as f64).collect();
        let mut src: Vec<[f32; 4]> = pts64
            .iter()
            .zip(&den64)
            .map(|(p, d)| [p[0] as f32, p[1] as f32, p[2] as f32, *d as f32])
            .collect();
        src.resize(32, [-1.0e9, -1.0e9, -1.0e9, 0.0]);
        let boxes = [SurfBox {
            center: center.map(|v| v as f32),
            radius: radius as f32,
            pt_off: 0,
            pt_len: 32,
            scale: (radius / 0.5) as f32,
        }];
        let (u32s, stats) = s2u(&boxes, &src, &check_rel, &uc2e32);
        assert_eq!(u32s.len(), n);
        assert!(stats.tally.flops > 0);

        // f64 reference.
        let uc = ops.up_check_surface(&center, radius);
        let mut ucheck = vec![0.0f64; n];
        direct_eval(&Laplace, &uc, &pts64, &den64, &mut ucheck);
        let (m, sc) = ops.uc2e(2);
        let mut want = vec![0.0f64; n];
        m.matvec_acc_scaled(&ucheck, &mut want, sc);

        // The UC2E solve is deliberately ill-conditioned (that is the
        // KIFMM compression); f32 matrix entries leave ~1e-3 relative
        // noise on the equivalent densities. What matters (and what the
        // pipeline test checks) is the ~1e-4 error of the resulting far
        // field; here we guard structure: same scale, same direction.
        let scale = want.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        for (g, w) in u32s.iter().zip(&want) {
            assert!(
                (*g as f64 - w).abs() < 5e-2 * scale.max(1e-30),
                "{g} vs {w}"
            );
        }
        let dot: f64 = u32s.iter().zip(&want).map(|(g, w)| *g as f64 * w).sum();
        let ng: f64 = u32s.iter().map(|g| (*g as f64).powi(2)).sum::<f64>().sqrt();
        let nw: f64 = want.iter().map(|w| w * w).sum::<f64>().sqrt();
        assert!(
            dot / (ng * nw) > 0.999,
            "densities aligned: cos = {}",
            dot / (ng * nw)
        );
    }

    /// The D2T kernel must agree with direct f64 evaluation from the
    /// downward-equivalent surface.
    #[test]
    fn d2t_matches_f64_reference() {
        use pfmm_core::ops::Ops;
        use pfmm_kernels::{direct_eval, Laplace};
        use std::sync::Arc;

        let order = 4;
        let ops = Ops::new(Arc::new(Laplace), order, 1e-12);
        let n = ops.n_surf();
        let equiv_rel: Vec<[f32; 3]> = pfmm_core::surface::surface_points(
            order,
            &[0.0; 3],
            1.0,
            pfmm_core::surface::RAD_OUTER,
        )
        .iter()
        .map(|p| p.map(|v| v as f32))
        .collect();

        let center = [0.25f64, 0.25, 0.75];
        let radius = 0.25f64;
        let tgts64: Vec<[f64; 3]> = (0..3)
            .map(|i| {
                let t = i as f64 / 3.0;
                [
                    center[0] + radius * (t - 0.5),
                    center[1],
                    center[2] + radius * 0.3,
                ]
            })
            .collect();
        let mut tgt: Vec<[f32; 3]> = tgts64
            .iter()
            .map(|p| [p[0] as f32, p[1] as f32, p[2] as f32])
            .collect();
        tgt.resize(32, [2.0e9; 3]);
        let d64: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.21).sin()).collect();
        let d32: Vec<f32> = d64.iter().map(|&v| v as f32).collect();
        let boxes = [SurfBox {
            center: center.map(|v| v as f32),
            radius: radius as f32,
            pt_off: 0,
            pt_len: 32,
            scale: 1.0,
        }];
        let (out, _) = d2t(&boxes, &tgt, &equiv_rel, &d32);

        let de = ops.down_equiv_surface(&center, radius);
        let mut want = vec![0.0f64; 3];
        direct_eval(&Laplace, &tgts64, &de, &d64, &mut want);
        let scale = want.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        for (g, w) in out.iter().take(3).zip(&want) {
            assert!(
                (*g as f64 - w).abs() < 1e-4 * scale.max(1e-30),
                "{g} vs {w}"
            );
        }
    }

    #[test]
    fn vli_hadamard_matches_scalar_reference() {
        let g = 16;
        // Two targets, three spectra.
        let khats: Vec<f32> = (0..2 * 2 * g).map(|i| (i as f32 * 0.1).sin()).collect();
        let uhats: Vec<f32> = (0..3 * 2 * g).map(|i| (i as f32 * 0.07).cos()).collect();
        let pairs_off = [0u32, 2, 3];
        let pair_khat = [0u32, 1, 0];
        let pair_uhat = [0u32, 2, 1];
        let pair_scale = [1.0f32, 0.5, 2.0];
        let (out, stats) = vli_hadamard(
            g,
            &pairs_off,
            &pair_khat,
            &pair_uhat,
            &pair_scale,
            &khats,
            &uhats,
        );
        assert_eq!(out.len(), 2 * 2 * g);
        // Check one element of target 0 by hand.
        let i = 5;
        let want_re = {
            let mut a = 0.0f32;
            for p in 0..2 {
                let kh = &khats[pair_khat[p] as usize * 2 * g..];
                let uh = &uhats[pair_uhat[p] as usize * 2 * g..];
                a += pair_scale[p] * (kh[2 * i] * uh[2 * i] - kh[2 * i + 1] * uh[2 * i + 1]);
            }
            a
        };
        assert!((out[2 * i] - want_re).abs() < 1e-5);
        // Bandwidth-bound by construction: ~0.6 flops per byte.
        let intensity = stats.tally.flops as f64 / stats.tally.gmem_coalesced as f64;
        assert!(intensity < 2.0, "hadamard intensity {intensity}");
    }
}
