//! A CUDA-like streaming executor with a memory-transaction cost model —
//! the reproduction's stand-in for the paper's NVIDIA Tesla S1070 GPUs
//! (§IV).
//!
//! Kernels here *really compute* (single precision, like the paper's GPU
//! path) using the same block/thread/shared-memory structure as the CUDA
//! originals, on a host thread pool. Every block records a [`Tally`] of
//! global-memory transactions (coalesced vs. uncoalesced), shared-memory
//! traffic, and flops; the [`DeviceSpec`] cost model converts the tallies
//! into modeled GPU seconds with S1070-era throughput numbers. Because
//! the paper's GPU findings are statements about arithmetic intensity per
//! FMM phase (U-list compute-bound, V-list Hadamard bandwidth-bound,
//! S2U/D2T regenerate geometry in-register), the model preserves exactly
//! the ratios that give the paper's Table III and Figure 6 their shape.
//!
//! The crate also implements the paper's host-side *data-structure
//! translation* (pointer-based LET → padded flat arrays) whose cost the
//! paper reports as minor — [`layout`] measures it for real.

pub mod device;
pub mod fmm;
pub mod kernels;
pub mod layout;
pub mod tune;

pub use device::{DeviceSpec, KernelStats, Tally};
pub use fmm::{run_gpu_fmm, run_gpu_fmm_distributed, run_gpu_fmm_wx, GpuFmmReport, GpuPhase};
pub use layout::GpuLayout;
pub use tune::{autotune_q_gpu, gpu_tune_sweep};
