//! Offline stand-in for `proptest`: the strategy combinators and macros
//! pfmm's property tests use, without crates.io access.
//!
//! Supported surface: numeric range strategies (`lo..hi`, `lo..=hi`),
//! tuple strategies, `prop::collection::vec`, `prop_map`/`prop_flat_map`,
//! the `proptest!` macro with an optional `#![proptest_config(..)]`
//! header, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate, by design: cases are generated from a
//! deterministic per-index seed (reproducible across runs and platforms)
//! and failures are reported with their case index but are **not shrunk**.
//! For this workspace's tests — tolerance checks over random point clouds
//! — shrinking adds little; determinism matters more.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-case random source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// The next 64 uniform bits.
    pub fn bits(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform integer in `[0, n)`; `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.0.random_below(n)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.random()
    }
}

/// A failed property within a test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

/// Configuration block accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Drive `case` for every configured case index (called by `proptest!`).
///
/// # Panics
/// Panics with the case index and message on the first failing case.
pub fn run_cases(
    config: ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for i in 0..config.cases {
        // Derive the case seed from the index so every case is
        // independently reproducible.
        let mut rng = TestRng(StdRng::seed_from_u64(
            0xC0FFEE ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
        ));
        if let Err(e) = case(&mut rng) {
            panic!("proptest case {i}/{} failed: {}", config.cases, e.0);
        }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = if span <= u64::MAX as u128 {
                    rng.below(span as u64) as u128
                } else {
                    // u128 spans: modulo fold of 128 random bits (bias
                    // < 2⁻⁶⁴, irrelevant for tests).
                    (((rng.bits() as u128) << 64) | rng.bits() as u128) % span
                };
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                let off = if span <= u64::MAX as u128 {
                    rng.below(span as u64) as u128
                } else {
                    (((rng.bits() as u128) << 64) | rng.bits() as u128) % span
                };
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )+};
}

int_range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize,
);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Inclusive length bounds for [`vec`].
    #[derive(Copy, Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the tests import with `use proptest::prelude::*`.

    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};

    pub mod prop {
        //! The `prop::` namespace of the real crate.
        pub use crate::collection;
    }
}

/// Assert inside a `proptest!` body; failure fails the case (no panic
/// until the runner reports it with its case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@fns ($cfg) $($rest)*}
    };
    (@fns ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategies = ($(($strat),)+);
                $crate::run_cases($cfg, move |rng| {
                    let ($($arg,)+) = $crate::Strategy::generate(&strategies, rng);
                    let out: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    out
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@fns ($crate::ProptestConfig::default()) $($rest)*}
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        crate::run_cases(
            ProptestConfig {
                cases: 200,
                ..ProptestConfig::default()
            },
            |rng| {
                let v = (0u32..7).generate(rng);
                prop_assert!(v < 7, "u32 range: {v}");
                let f = (-2.0f64..3.0).generate(rng);
                prop_assert!((-2.0..3.0).contains(&f), "f64 range: {f}");
                let i = (-100i64..100).generate(rng);
                prop_assert!((-100..100).contains(&i), "i64 range: {i}");
                let u = (1u128 << 90..1u128 << 91).generate(rng);
                prop_assert!((1u128 << 90..1u128 << 91).contains(&u), "u128 range");
                let q = (3usize..=3).generate(rng);
                prop_assert_eq!(q, 3);
                Ok(())
            },
        );
    }

    #[test]
    fn vec_and_map_compose() {
        crate::run_cases(
            ProptestConfig {
                cases: 50,
                ..ProptestConfig::default()
            },
            |rng| {
                let s = prop::collection::vec((0.0f64..1.0, 0u32..10), 2..5).prop_map(|v| v.len());
                let n = s.generate(rng);
                prop_assert!((2..5).contains(&n), "vec length {n}");
                Ok(())
            },
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro itself: generated args are in range, asserts work.
        #[test]
        fn macro_generates_cases(a in 1usize..10, b in 0.0f64..1.0) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            if a == 100 {
                return Ok(()); // exercise early return type-checking
            }
            prop_assert_eq!(a, a);
            prop_assert_ne!(a + 1, a);
        }
    }

    proptest! {
        /// Default-config form (no inner attribute).
        #[test]
        fn macro_default_config(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics_with_index() {
        crate::run_cases(
            ProptestConfig {
                cases: 5,
                ..ProptestConfig::default()
            },
            |rng| {
                let v = (0u32..10).generate(rng);
                prop_assert!(v > 100, "always fails: {v}");
                Ok(())
            },
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut vals = Vec::new();
            crate::run_cases(
                ProptestConfig {
                    cases: 10,
                    ..ProptestConfig::default()
                },
                |rng| {
                    vals.push((0u64..1000).generate(rng));
                    Ok(())
                },
            );
            vals
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn flat_map_dependent_generation() {
        crate::run_cases(
            ProptestConfig {
                cases: 30,
                ..ProptestConfig::default()
            },
            |rng| {
                let s = (1usize..=4, 1usize..=4).prop_flat_map(|(r, c)| {
                    prop::collection::vec(-1.0f64..1.0, r * c).prop_map(move |d| (r, c, d))
                });
                let (r, c, d) = s.generate(rng);
                prop_assert_eq!(d.len(), r * c);
                Ok(())
            },
        );
    }

    #[test]
    fn just_clones() {
        crate::run_cases(
            ProptestConfig {
                cases: 3,
                ..ProptestConfig::default()
            },
            |rng| {
                let v = Just(vec![1, 2]).generate(rng);
                prop_assert_eq!(v, vec![1, 2]);
                Ok(())
            },
        );
    }
}
