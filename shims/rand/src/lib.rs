//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small API subset it actually uses: a seedable generator
//! ([`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]) and uniform
//! sampling via [`RngExt::random`]. The generator is xoshiro256++
//! (Blackman & Vigna) seeded through SplitMix64 — statistically solid for
//! test clouds and benchmarks, deterministic across platforms. Stream
//! values differ from the real `rand::rngs::StdRng` (ChaCha12); nothing in
//! the workspace depends on the exact stream, only on seeded determinism.

/// Seeding interface (the `seed_from_u64` entry point of the real crate).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator.
pub trait Standard: Sized {
    /// Draw one value from 64 uniform bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`: the top 53 bits scaled by 2⁻⁵³.
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for usize {
    fn from_bits(bits: u64) -> usize {
        bits as usize
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits >> 63 == 1
    }
}

/// Uniform sampling methods (the `rand::RngExt` surface pfmm uses).
pub trait RngExt {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of `T` (`f64` in `[0, 1)`, full range for ints).
    fn random<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    fn random_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Multiply-shift rejection-free mapping (Lemire); the tiny bias
        // (< 2⁻⁶⁴·n) is irrelevant for test data.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngExt, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut r = StdRng::seed_from_u64(7);
        let mut lo = 0usize;
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
            if v < 0.5 {
                lo += 1;
            }
        }
        assert!((4500..5500).contains(&lo), "roughly balanced halves: {lo}");
    }

    #[test]
    fn random_below_bound() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(r.random_below(17) < 17);
        }
    }
}
