//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex`/`RwLock`
//! API implemented over `std::sync`.
//!
//! The build environment has no crates.io access; the workspace only needs
//! lock types whose guards come back without a `Result` (pfmm's operator
//! caches lock on every translation lookup). A poisoned std lock means a
//! panic already happened on another thread, so unwrapping here only turns
//! one panic into a second — semantics parking_lot shares by design.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocking).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards come back directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (blocking).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard (blocking).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusively() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
