//! Offline stand-in for `criterion`: the harness subset pfmm's benches
//! use (`benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `criterion_group!`/`criterion_main!`).
//!
//! The build environment has no crates.io access. Like the real crate,
//! the harness distinguishes `cargo bench` from `cargo test`: cargo
//! passes `--bench` to bench binaries only under `cargo bench`, so
//! without it every benchmark body runs exactly once as a smoke test.
//! Under `cargo bench` each benchmark is warmed once and then sampled
//! `sample_size` times; min/mean/max wall-clock are printed per sample.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// the shim always runs one setup per timed invocation).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness state.
pub struct Criterion {
    default_sample_size: usize,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            bench_mode: self.bench_mode,
            _c: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let mode = self.bench_mode;
        let n = self.default_sample_size;
        run_one("", &id.into(), n, mode, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    bench_mode: bool,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Define and immediately run one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, self.bench_mode, f);
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    samples: usize,
    bench_mode: bool,
    mut f: F,
) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut b = Bencher {
        samples: if bench_mode { samples } else { 1 },
        warmup: bench_mode,
        times: Vec::new(),
    };
    f(&mut b);
    if !bench_mode {
        println!("bench {label}: ok (smoke, 1 iteration)");
        return;
    }
    let n = b.times.len().max(1) as f64;
    let mean = b.times.iter().sum::<Duration>().as_secs_f64() / n;
    let min = b
        .times
        .iter()
        .min()
        .copied()
        .unwrap_or_default()
        .as_secs_f64();
    let max = b
        .times
        .iter()
        .max()
        .copied()
        .unwrap_or_default()
        .as_secs_f64();
    println!(
        "bench {label}: min {:.4e}s  mean {:.4e}s  max {:.4e}s  ({} samples)",
        min,
        mean,
        max,
        b.times.len()
    );
}

/// Passed to each benchmark closure; times the routine it is given.
pub struct Bencher {
    samples: usize,
    warmup: bool,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` `sample_size` times (once in test mode).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.warmup {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.times.push(t0.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup` (setup not timed).
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        if self.warmup {
            black_box(routine(setup()));
        }
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.times.push(t0.elapsed());
        }
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut count = 0;
        let mut b = Bencher {
            samples: 1,
            warmup: false,
            times: Vec::new(),
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn batched_setup_per_sample() {
        let mut setups = 0;
        let mut b = Bencher {
            samples: 3,
            warmup: false,
            times: Vec::new(),
        };
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 4]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 3);
        assert_eq!(b.times.len(), 3);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            default_sample_size: 2,
            bench_mode: false,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
