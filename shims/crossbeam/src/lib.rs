//! Offline stand-in for `crossbeam`: the `channel::unbounded` and
//! `thread::scope` surface pfmm uses, implemented over `std::sync::mpsc`
//! and `std::thread::scope`.
//!
//! The build environment has no crates.io access. Semantics match where
//! the workspace depends on them: unbounded buffered channels with FIFO
//! per sender, and scoped threads whose panics propagate to the caller
//! when joined. One deliberate divergence: a panic in a spawned thread
//! that the caller never joins propagates as a panic out of [`thread::scope`]
//! (std semantics) instead of an `Err` — every caller in this workspace
//! joins explicitly, so the difference is unobservable here.

pub mod channel {
    //! Multi-producer channels (std mpsc re-exports).

    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// An unbounded FIFO channel; sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

pub mod thread {
    //! Scoped threads with the crossbeam calling convention (the spawn
    //! closure receives the scope, enabling nested spawns).

    /// Result of joining a scoped thread (`Err` carries the panic payload).
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle; spawned closures receive a reference to it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` if it panicked.
        pub fn join(self) -> Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. Returns `Ok` with the closure's value (see the module
    /// docs for the panic-propagation divergence from crossbeam).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_fifo() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..10 {
            tx.send(i).expect("receiver alive");
        }
        assert_eq!(
            (0..10).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        assert!(rx.try_recv().is_err(), "drained");
    }

    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|s| {
            let hs: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 2)).collect();
            hs.into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<i32>()
        })
        .expect("scope ok");
        assert_eq!(sum, 12);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let out = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().expect("inner"))
                .join()
                .expect("outer")
        })
        .expect("scope ok");
        assert_eq!(out, 7);
    }
}
