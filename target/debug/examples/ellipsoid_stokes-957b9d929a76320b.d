/root/repo/target/debug/examples/ellipsoid_stokes-957b9d929a76320b.d: examples/ellipsoid_stokes.rs

/root/repo/target/debug/examples/ellipsoid_stokes-957b9d929a76320b: examples/ellipsoid_stokes.rs

examples/ellipsoid_stokes.rs:
