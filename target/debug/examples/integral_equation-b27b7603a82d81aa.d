/root/repo/target/debug/examples/integral_equation-b27b7603a82d81aa.d: examples/integral_equation.rs

/root/repo/target/debug/examples/integral_equation-b27b7603a82d81aa: examples/integral_equation.rs

examples/integral_equation.rs:
