/root/repo/target/debug/examples/gpu_accel-92b56adf7fcaddb0.d: examples/gpu_accel.rs Cargo.toml

/root/repo/target/debug/examples/libgpu_accel-92b56adf7fcaddb0.rmeta: examples/gpu_accel.rs Cargo.toml

examples/gpu_accel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
