/root/repo/target/debug/examples/gpu_accel-62a798038ac81a97.d: examples/gpu_accel.rs

/root/repo/target/debug/examples/gpu_accel-62a798038ac81a97: examples/gpu_accel.rs

examples/gpu_accel.rs:
