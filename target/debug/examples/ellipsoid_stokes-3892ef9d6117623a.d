/root/repo/target/debug/examples/ellipsoid_stokes-3892ef9d6117623a.d: examples/ellipsoid_stokes.rs Cargo.toml

/root/repo/target/debug/examples/libellipsoid_stokes-3892ef9d6117623a.rmeta: examples/ellipsoid_stokes.rs Cargo.toml

examples/ellipsoid_stokes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
