/root/repo/target/debug/examples/quickstart-9aa561c57626900d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9aa561c57626900d: examples/quickstart.rs

examples/quickstart.rs:
