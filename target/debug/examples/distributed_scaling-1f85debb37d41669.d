/root/repo/target/debug/examples/distributed_scaling-1f85debb37d41669.d: examples/distributed_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_scaling-1f85debb37d41669.rmeta: examples/distributed_scaling.rs Cargo.toml

examples/distributed_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
