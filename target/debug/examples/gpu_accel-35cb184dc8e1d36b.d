/root/repo/target/debug/examples/gpu_accel-35cb184dc8e1d36b.d: examples/gpu_accel.rs

/root/repo/target/debug/examples/gpu_accel-35cb184dc8e1d36b: examples/gpu_accel.rs

examples/gpu_accel.rs:
