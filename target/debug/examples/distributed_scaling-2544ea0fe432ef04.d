/root/repo/target/debug/examples/distributed_scaling-2544ea0fe432ef04.d: examples/distributed_scaling.rs

/root/repo/target/debug/examples/distributed_scaling-2544ea0fe432ef04: examples/distributed_scaling.rs

examples/distributed_scaling.rs:
