/root/repo/target/debug/examples/quickstart-58d617c53d4e7526.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-58d617c53d4e7526: examples/quickstart.rs

examples/quickstart.rs:
