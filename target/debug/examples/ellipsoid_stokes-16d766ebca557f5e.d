/root/repo/target/debug/examples/ellipsoid_stokes-16d766ebca557f5e.d: examples/ellipsoid_stokes.rs

/root/repo/target/debug/examples/ellipsoid_stokes-16d766ebca557f5e: examples/ellipsoid_stokes.rs

examples/ellipsoid_stokes.rs:
