/root/repo/target/debug/examples/integral_equation-66e353f48b630da9.d: examples/integral_equation.rs

/root/repo/target/debug/examples/integral_equation-66e353f48b630da9: examples/integral_equation.rs

examples/integral_equation.rs:
