/root/repo/target/debug/examples/distributed_scaling-0e6bb66421535ef8.d: examples/distributed_scaling.rs

/root/repo/target/debug/examples/distributed_scaling-0e6bb66421535ef8: examples/distributed_scaling.rs

examples/distributed_scaling.rs:
