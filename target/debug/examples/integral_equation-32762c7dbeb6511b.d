/root/repo/target/debug/examples/integral_equation-32762c7dbeb6511b.d: examples/integral_equation.rs Cargo.toml

/root/repo/target/debug/examples/libintegral_equation-32762c7dbeb6511b.rmeta: examples/integral_equation.rs Cargo.toml

examples/integral_equation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
