/root/repo/target/debug/deps/gpu_pipeline-6309486d391bd127.d: tests/gpu_pipeline.rs

/root/repo/target/debug/deps/gpu_pipeline-6309486d391bd127: tests/gpu_pipeline.rs

tests/gpu_pipeline.rs:
