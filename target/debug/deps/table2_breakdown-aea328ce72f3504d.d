/root/repo/target/debug/deps/table2_breakdown-aea328ce72f3504d.d: crates/pfmm-bench/src/bin/table2_breakdown.rs

/root/repo/target/debug/deps/table2_breakdown-aea328ce72f3504d: crates/pfmm-bench/src/bin/table2_breakdown.rs

crates/pfmm-bench/src/bin/table2_breakdown.rs:
