/root/repo/target/debug/deps/pfmm-3c3f4d6ba6ed85bb.d: src/lib.rs

/root/repo/target/debug/deps/pfmm-3c3f4d6ba6ed85bb: src/lib.rs

src/lib.rs:
