/root/repo/target/debug/deps/ablation_comm-6c9556bef2fd3505.d: crates/pfmm-bench/src/bin/ablation_comm.rs

/root/repo/target/debug/deps/ablation_comm-6c9556bef2fd3505: crates/pfmm-bench/src/bin/ablation_comm.rs

crates/pfmm-bench/src/bin/ablation_comm.rs:
