/root/repo/target/debug/deps/table2_breakdown-a10cef7414d4dbda.d: crates/pfmm-bench/src/bin/table2_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_breakdown-a10cef7414d4dbda.rmeta: crates/pfmm-bench/src/bin/table2_breakdown.rs Cargo.toml

crates/pfmm-bench/src/bin/table2_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
