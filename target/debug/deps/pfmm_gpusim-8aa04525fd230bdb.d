/root/repo/target/debug/deps/pfmm_gpusim-8aa04525fd230bdb.d: crates/pfmm-gpusim/src/lib.rs crates/pfmm-gpusim/src/device.rs crates/pfmm-gpusim/src/fmm.rs crates/pfmm-gpusim/src/kernels.rs crates/pfmm-gpusim/src/layout.rs crates/pfmm-gpusim/src/tune.rs

/root/repo/target/debug/deps/pfmm_gpusim-8aa04525fd230bdb: crates/pfmm-gpusim/src/lib.rs crates/pfmm-gpusim/src/device.rs crates/pfmm-gpusim/src/fmm.rs crates/pfmm-gpusim/src/kernels.rs crates/pfmm-gpusim/src/layout.rs crates/pfmm-gpusim/src/tune.rs

crates/pfmm-gpusim/src/lib.rs:
crates/pfmm-gpusim/src/device.rs:
crates/pfmm-gpusim/src/fmm.rs:
crates/pfmm-gpusim/src/kernels.rs:
crates/pfmm-gpusim/src/layout.rs:
crates/pfmm-gpusim/src/tune.rs:
