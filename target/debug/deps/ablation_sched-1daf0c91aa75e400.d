/root/repo/target/debug/deps/ablation_sched-1daf0c91aa75e400.d: crates/pfmm-bench/src/bin/ablation_sched.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sched-1daf0c91aa75e400.rmeta: crates/pfmm-bench/src/bin/ablation_sched.rs Cargo.toml

crates/pfmm-bench/src/bin/ablation_sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
