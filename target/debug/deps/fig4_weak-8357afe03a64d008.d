/root/repo/target/debug/deps/fig4_weak-8357afe03a64d008.d: crates/pfmm-bench/src/bin/fig4_weak.rs

/root/repo/target/debug/deps/fig4_weak-8357afe03a64d008: crates/pfmm-bench/src/bin/fig4_weak.rs

crates/pfmm-bench/src/bin/fig4_weak.rs:
