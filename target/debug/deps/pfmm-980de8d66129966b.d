/root/repo/target/debug/deps/pfmm-980de8d66129966b.d: crates/pfmm-cli/src/main.rs crates/pfmm-cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm-980de8d66129966b.rmeta: crates/pfmm-cli/src/main.rs crates/pfmm-cli/src/args.rs Cargo.toml

crates/pfmm-cli/src/main.rs:
crates/pfmm-cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
