/root/repo/target/debug/deps/properties-85f6292148050f1c.d: crates/pfmm-morton/tests/properties.rs

/root/repo/target/debug/deps/properties-85f6292148050f1c: crates/pfmm-morton/tests/properties.rs

crates/pfmm-morton/tests/properties.rs:
