/root/repo/target/debug/deps/properties-92b024cd57acb7d1.d: crates/pfmm-mpisim/tests/properties.rs

/root/repo/target/debug/deps/properties-92b024cd57acb7d1: crates/pfmm-mpisim/tests/properties.rs

crates/pfmm-mpisim/tests/properties.rs:
