/root/repo/target/debug/deps/fig3_strong-4f30832221c6a310.d: crates/pfmm-bench/src/bin/fig3_strong.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_strong-4f30832221c6a310.rmeta: crates/pfmm-bench/src/bin/fig3_strong.rs Cargo.toml

crates/pfmm-bench/src/bin/fig3_strong.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
