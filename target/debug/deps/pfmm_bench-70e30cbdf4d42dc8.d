/root/repo/target/debug/deps/pfmm_bench-70e30cbdf4d42dc8.d: crates/pfmm-bench/src/lib.rs

/root/repo/target/debug/deps/libpfmm_bench-70e30cbdf4d42dc8.rlib: crates/pfmm-bench/src/lib.rs

/root/repo/target/debug/deps/libpfmm_bench-70e30cbdf4d42dc8.rmeta: crates/pfmm-bench/src/lib.rs

crates/pfmm-bench/src/lib.rs:
