/root/repo/target/debug/deps/pfmm_morton-035b820e02438f5c.d: crates/pfmm-morton/src/lib.rs crates/pfmm-morton/src/key.rs crates/pfmm-morton/src/region.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_morton-035b820e02438f5c.rmeta: crates/pfmm-morton/src/lib.rs crates/pfmm-morton/src/key.rs crates/pfmm-morton/src/region.rs Cargo.toml

crates/pfmm-morton/src/lib.rs:
crates/pfmm-morton/src/key.rs:
crates/pfmm-morton/src/region.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
