/root/repo/target/debug/deps/sched-72489f5044a97367.d: crates/pfmm-sched/tests/sched.rs Cargo.toml

/root/repo/target/debug/deps/libsched-72489f5044a97367.rmeta: crates/pfmm-sched/tests/sched.rs Cargo.toml

crates/pfmm-sched/tests/sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
