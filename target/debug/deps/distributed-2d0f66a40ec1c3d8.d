/root/repo/target/debug/deps/distributed-2d0f66a40ec1c3d8.d: tests/distributed.rs Cargo.toml

/root/repo/target/debug/deps/libdistributed-2d0f66a40ec1c3d8.rmeta: tests/distributed.rs Cargo.toml

tests/distributed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
