/root/repo/target/debug/deps/pfmm_fft-156be861b4c51510.d: crates/pfmm-fft/src/lib.rs crates/pfmm-fft/src/complex.rs crates/pfmm-fft/src/fft1d.rs crates/pfmm-fft/src/fft3d.rs

/root/repo/target/debug/deps/libpfmm_fft-156be861b4c51510.rlib: crates/pfmm-fft/src/lib.rs crates/pfmm-fft/src/complex.rs crates/pfmm-fft/src/fft1d.rs crates/pfmm-fft/src/fft3d.rs

/root/repo/target/debug/deps/libpfmm_fft-156be861b4c51510.rmeta: crates/pfmm-fft/src/lib.rs crates/pfmm-fft/src/complex.rs crates/pfmm-fft/src/fft1d.rs crates/pfmm-fft/src/fft3d.rs

crates/pfmm-fft/src/lib.rs:
crates/pfmm-fft/src/complex.rs:
crates/pfmm-fft/src/fft1d.rs:
crates/pfmm-fft/src/fft3d.rs:
