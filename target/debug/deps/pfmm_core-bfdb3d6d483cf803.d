/root/repo/target/debug/deps/pfmm_core-bfdb3d6d483cf803.d: crates/pfmm-core/src/lib.rs crates/pfmm-core/src/distrib.rs crates/pfmm-core/src/driver.rs crates/pfmm-core/src/exec.rs crates/pfmm-core/src/m2l_fft.rs crates/pfmm-core/src/ops.rs crates/pfmm-core/src/par.rs crates/pfmm-core/src/plan.rs crates/pfmm-core/src/profile.rs crates/pfmm-core/src/reduce.rs crates/pfmm-core/src/solve.rs crates/pfmm-core/src/surface.rs crates/pfmm-core/src/tune.rs crates/pfmm-core/src/verify.rs

/root/repo/target/debug/deps/pfmm_core-bfdb3d6d483cf803: crates/pfmm-core/src/lib.rs crates/pfmm-core/src/distrib.rs crates/pfmm-core/src/driver.rs crates/pfmm-core/src/exec.rs crates/pfmm-core/src/m2l_fft.rs crates/pfmm-core/src/ops.rs crates/pfmm-core/src/par.rs crates/pfmm-core/src/plan.rs crates/pfmm-core/src/profile.rs crates/pfmm-core/src/reduce.rs crates/pfmm-core/src/solve.rs crates/pfmm-core/src/surface.rs crates/pfmm-core/src/tune.rs crates/pfmm-core/src/verify.rs

crates/pfmm-core/src/lib.rs:
crates/pfmm-core/src/distrib.rs:
crates/pfmm-core/src/driver.rs:
crates/pfmm-core/src/exec.rs:
crates/pfmm-core/src/m2l_fft.rs:
crates/pfmm-core/src/ops.rs:
crates/pfmm-core/src/par.rs:
crates/pfmm-core/src/plan.rs:
crates/pfmm-core/src/profile.rs:
crates/pfmm-core/src/reduce.rs:
crates/pfmm-core/src/solve.rs:
crates/pfmm-core/src/surface.rs:
crates/pfmm-core/src/tune.rs:
crates/pfmm-core/src/verify.rs:
