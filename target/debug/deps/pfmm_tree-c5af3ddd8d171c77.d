/root/repo/target/debug/deps/pfmm_tree-c5af3ddd8d171c77.d: crates/pfmm-tree/src/lib.rs crates/pfmm-tree/src/balance.rs crates/pfmm-tree/src/bitonic.rs crates/pfmm-tree/src/dtree.rs crates/pfmm-tree/src/lett.rs crates/pfmm-tree/src/lists.rs crates/pfmm-tree/src/point.rs crates/pfmm-tree/src/sort.rs crates/pfmm-tree/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_tree-c5af3ddd8d171c77.rmeta: crates/pfmm-tree/src/lib.rs crates/pfmm-tree/src/balance.rs crates/pfmm-tree/src/bitonic.rs crates/pfmm-tree/src/dtree.rs crates/pfmm-tree/src/lett.rs crates/pfmm-tree/src/lists.rs crates/pfmm-tree/src/point.rs crates/pfmm-tree/src/sort.rs crates/pfmm-tree/src/stats.rs Cargo.toml

crates/pfmm-tree/src/lib.rs:
crates/pfmm-tree/src/balance.rs:
crates/pfmm-tree/src/bitonic.rs:
crates/pfmm-tree/src/dtree.rs:
crates/pfmm-tree/src/lett.rs:
crates/pfmm-tree/src/lists.rs:
crates/pfmm-tree/src/point.rs:
crates/pfmm-tree/src/sort.rs:
crates/pfmm-tree/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
