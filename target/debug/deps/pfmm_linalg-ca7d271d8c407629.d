/root/repo/target/debug/deps/pfmm_linalg-ca7d271d8c407629.d: crates/pfmm-linalg/src/lib.rs crates/pfmm-linalg/src/matrix.rs crates/pfmm-linalg/src/svd.rs

/root/repo/target/debug/deps/pfmm_linalg-ca7d271d8c407629: crates/pfmm-linalg/src/lib.rs crates/pfmm-linalg/src/matrix.rs crates/pfmm-linalg/src/svd.rs

crates/pfmm-linalg/src/lib.rs:
crates/pfmm-linalg/src/matrix.rs:
crates/pfmm-linalg/src/svd.rs:
