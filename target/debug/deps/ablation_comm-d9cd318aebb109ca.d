/root/repo/target/debug/deps/ablation_comm-d9cd318aebb109ca.d: crates/pfmm-bench/src/bin/ablation_comm.rs Cargo.toml

/root/repo/target/debug/deps/libablation_comm-d9cd318aebb109ca.rmeta: crates/pfmm-bench/src/bin/ablation_comm.rs Cargo.toml

crates/pfmm-bench/src/bin/ablation_comm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
