/root/repo/target/debug/deps/pfmm_sched-9e47bd79efbe0a48.d: crates/pfmm-sched/src/lib.rs crates/pfmm-sched/src/buf.rs crates/pfmm-sched/src/exec.rs crates/pfmm-sched/src/graph.rs

/root/repo/target/debug/deps/pfmm_sched-9e47bd79efbe0a48: crates/pfmm-sched/src/lib.rs crates/pfmm-sched/src/buf.rs crates/pfmm-sched/src/exec.rs crates/pfmm-sched/src/graph.rs

crates/pfmm-sched/src/lib.rs:
crates/pfmm-sched/src/buf.rs:
crates/pfmm-sched/src/exec.rs:
crates/pfmm-sched/src/graph.rs:
