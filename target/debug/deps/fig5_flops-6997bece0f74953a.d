/root/repo/target/debug/deps/fig5_flops-6997bece0f74953a.d: crates/pfmm-bench/src/bin/fig5_flops.rs

/root/repo/target/debug/deps/fig5_flops-6997bece0f74953a: crates/pfmm-bench/src/bin/fig5_flops.rs

crates/pfmm-bench/src/bin/fig5_flops.rs:
