/root/repo/target/debug/deps/failure_modes-11e361d17b10209b.d: tests/failure_modes.rs

/root/repo/target/debug/deps/failure_modes-11e361d17b10209b: tests/failure_modes.rs

tests/failure_modes.rs:
