/root/repo/target/debug/deps/properties-632b8d2e31bf540c.d: crates/pfmm-morton/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-632b8d2e31bf540c.rmeta: crates/pfmm-morton/tests/properties.rs Cargo.toml

crates/pfmm-morton/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
