/root/repo/target/debug/deps/accuracy-e13cf8b2c3d322e6.d: tests/accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libaccuracy-e13cf8b2c3d322e6.rmeta: tests/accuracy.rs Cargo.toml

tests/accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
