/root/repo/target/debug/deps/pfmm_perfmodel-2185632806873cc1.d: crates/pfmm-perfmodel/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_perfmodel-2185632806873cc1.rmeta: crates/pfmm-perfmodel/src/lib.rs Cargo.toml

crates/pfmm-perfmodel/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
