/root/repo/target/debug/deps/properties-f9a9f8f33c9ed941.d: crates/pfmm-linalg/tests/properties.rs

/root/repo/target/debug/deps/properties-f9a9f8f33c9ed941: crates/pfmm-linalg/tests/properties.rs

crates/pfmm-linalg/tests/properties.rs:
