/root/repo/target/debug/deps/fig6_gpu_weak-79539f481cd6dc4d.d: crates/pfmm-bench/src/bin/fig6_gpu_weak.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_gpu_weak-79539f481cd6dc4d.rmeta: crates/pfmm-bench/src/bin/fig6_gpu_weak.rs Cargo.toml

crates/pfmm-bench/src/bin/fig6_gpu_weak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
