/root/repo/target/debug/deps/ablation_m2l-c91fd4a0c3c446b0.d: crates/pfmm-bench/src/bin/ablation_m2l.rs Cargo.toml

/root/repo/target/debug/deps/libablation_m2l-c91fd4a0c3c446b0.rmeta: crates/pfmm-bench/src/bin/ablation_m2l.rs Cargo.toml

crates/pfmm-bench/src/bin/ablation_m2l.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
