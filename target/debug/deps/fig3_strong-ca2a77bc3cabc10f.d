/root/repo/target/debug/deps/fig3_strong-ca2a77bc3cabc10f.d: crates/pfmm-bench/src/bin/fig3_strong.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_strong-ca2a77bc3cabc10f.rmeta: crates/pfmm-bench/src/bin/fig3_strong.rs Cargo.toml

crates/pfmm-bench/src/bin/fig3_strong.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
