/root/repo/target/debug/deps/invariants-a1106e10a8444526.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-a1106e10a8444526.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
