/root/repo/target/debug/deps/petaflop_projection-780eb3def4d9d63c.d: crates/pfmm-bench/src/bin/petaflop_projection.rs

/root/repo/target/debug/deps/petaflop_projection-780eb3def4d9d63c: crates/pfmm-bench/src/bin/petaflop_projection.rs

crates/pfmm-bench/src/bin/petaflop_projection.rs:
