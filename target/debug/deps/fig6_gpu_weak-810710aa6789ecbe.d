/root/repo/target/debug/deps/fig6_gpu_weak-810710aa6789ecbe.d: crates/pfmm-bench/src/bin/fig6_gpu_weak.rs

/root/repo/target/debug/deps/fig6_gpu_weak-810710aa6789ecbe: crates/pfmm-bench/src/bin/fig6_gpu_weak.rs

crates/pfmm-bench/src/bin/fig6_gpu_weak.rs:
