/root/repo/target/debug/deps/pfmm_mpisim-4aac6ce623c4d90d.d: crates/pfmm-mpisim/src/lib.rs crates/pfmm-mpisim/src/collectives.rs crates/pfmm-mpisim/src/comm.rs

/root/repo/target/debug/deps/libpfmm_mpisim-4aac6ce623c4d90d.rlib: crates/pfmm-mpisim/src/lib.rs crates/pfmm-mpisim/src/collectives.rs crates/pfmm-mpisim/src/comm.rs

/root/repo/target/debug/deps/libpfmm_mpisim-4aac6ce623c4d90d.rmeta: crates/pfmm-mpisim/src/lib.rs crates/pfmm-mpisim/src/collectives.rs crates/pfmm-mpisim/src/comm.rs

crates/pfmm-mpisim/src/lib.rs:
crates/pfmm-mpisim/src/collectives.rs:
crates/pfmm-mpisim/src/comm.rs:
