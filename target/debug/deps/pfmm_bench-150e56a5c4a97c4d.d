/root/repo/target/debug/deps/pfmm_bench-150e56a5c4a97c4d.d: crates/pfmm-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_bench-150e56a5c4a97c4d.rmeta: crates/pfmm-bench/src/lib.rs Cargo.toml

crates/pfmm-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
