/root/repo/target/debug/deps/ablation_m2l-e0b0e0222a73b865.d: crates/pfmm-bench/src/bin/ablation_m2l.rs

/root/repo/target/debug/deps/ablation_m2l-e0b0e0222a73b865: crates/pfmm-bench/src/bin/ablation_m2l.rs

crates/pfmm-bench/src/bin/ablation_m2l.rs:
