/root/repo/target/debug/deps/sched-28069917ad6d2af6.d: crates/pfmm-sched/tests/sched.rs

/root/repo/target/debug/deps/sched-28069917ad6d2af6: crates/pfmm-sched/tests/sched.rs

crates/pfmm-sched/tests/sched.rs:
