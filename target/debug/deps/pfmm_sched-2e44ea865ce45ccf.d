/root/repo/target/debug/deps/pfmm_sched-2e44ea865ce45ccf.d: crates/pfmm-sched/src/lib.rs crates/pfmm-sched/src/buf.rs crates/pfmm-sched/src/exec.rs crates/pfmm-sched/src/graph.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_sched-2e44ea865ce45ccf.rmeta: crates/pfmm-sched/src/lib.rs crates/pfmm-sched/src/buf.rs crates/pfmm-sched/src/exec.rs crates/pfmm-sched/src/graph.rs Cargo.toml

crates/pfmm-sched/src/lib.rs:
crates/pfmm-sched/src/buf.rs:
crates/pfmm-sched/src/exec.rs:
crates/pfmm-sched/src/graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
