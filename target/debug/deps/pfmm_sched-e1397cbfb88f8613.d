/root/repo/target/debug/deps/pfmm_sched-e1397cbfb88f8613.d: crates/pfmm-sched/src/lib.rs crates/pfmm-sched/src/buf.rs crates/pfmm-sched/src/exec.rs crates/pfmm-sched/src/graph.rs

/root/repo/target/debug/deps/libpfmm_sched-e1397cbfb88f8613.rlib: crates/pfmm-sched/src/lib.rs crates/pfmm-sched/src/buf.rs crates/pfmm-sched/src/exec.rs crates/pfmm-sched/src/graph.rs

/root/repo/target/debug/deps/libpfmm_sched-e1397cbfb88f8613.rmeta: crates/pfmm-sched/src/lib.rs crates/pfmm-sched/src/buf.rs crates/pfmm-sched/src/exec.rs crates/pfmm-sched/src/graph.rs

crates/pfmm-sched/src/lib.rs:
crates/pfmm-sched/src/buf.rs:
crates/pfmm-sched/src/exec.rs:
crates/pfmm-sched/src/graph.rs:
