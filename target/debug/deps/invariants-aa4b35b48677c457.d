/root/repo/target/debug/deps/invariants-aa4b35b48677c457.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-aa4b35b48677c457: tests/invariants.rs

tests/invariants.rs:
