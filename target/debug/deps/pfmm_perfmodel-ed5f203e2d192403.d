/root/repo/target/debug/deps/pfmm_perfmodel-ed5f203e2d192403.d: crates/pfmm-perfmodel/src/lib.rs

/root/repo/target/debug/deps/pfmm_perfmodel-ed5f203e2d192403: crates/pfmm-perfmodel/src/lib.rs

crates/pfmm-perfmodel/src/lib.rs:
