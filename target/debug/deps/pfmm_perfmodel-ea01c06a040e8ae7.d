/root/repo/target/debug/deps/pfmm_perfmodel-ea01c06a040e8ae7.d: crates/pfmm-perfmodel/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_perfmodel-ea01c06a040e8ae7.rmeta: crates/pfmm-perfmodel/src/lib.rs Cargo.toml

crates/pfmm-perfmodel/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
