/root/repo/target/debug/deps/pfmm_gpusim-d2e32c1ca65bfe1a.d: crates/pfmm-gpusim/src/lib.rs crates/pfmm-gpusim/src/device.rs crates/pfmm-gpusim/src/fmm.rs crates/pfmm-gpusim/src/kernels.rs crates/pfmm-gpusim/src/layout.rs crates/pfmm-gpusim/src/tune.rs

/root/repo/target/debug/deps/libpfmm_gpusim-d2e32c1ca65bfe1a.rlib: crates/pfmm-gpusim/src/lib.rs crates/pfmm-gpusim/src/device.rs crates/pfmm-gpusim/src/fmm.rs crates/pfmm-gpusim/src/kernels.rs crates/pfmm-gpusim/src/layout.rs crates/pfmm-gpusim/src/tune.rs

/root/repo/target/debug/deps/libpfmm_gpusim-d2e32c1ca65bfe1a.rmeta: crates/pfmm-gpusim/src/lib.rs crates/pfmm-gpusim/src/device.rs crates/pfmm-gpusim/src/fmm.rs crates/pfmm-gpusim/src/kernels.rs crates/pfmm-gpusim/src/layout.rs crates/pfmm-gpusim/src/tune.rs

crates/pfmm-gpusim/src/lib.rs:
crates/pfmm-gpusim/src/device.rs:
crates/pfmm-gpusim/src/fmm.rs:
crates/pfmm-gpusim/src/kernels.rs:
crates/pfmm-gpusim/src/layout.rs:
crates/pfmm-gpusim/src/tune.rs:
