/root/repo/target/debug/deps/tree_ops-e801b66e79182d6d.d: crates/pfmm-bench/benches/tree_ops.rs Cargo.toml

/root/repo/target/debug/deps/libtree_ops-e801b66e79182d6d.rmeta: crates/pfmm-bench/benches/tree_ops.rs Cargo.toml

crates/pfmm-bench/benches/tree_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
