/root/repo/target/debug/deps/fig3_strong-575e6fe700f592e1.d: crates/pfmm-bench/src/bin/fig3_strong.rs

/root/repo/target/debug/deps/fig3_strong-575e6fe700f592e1: crates/pfmm-bench/src/bin/fig3_strong.rs

crates/pfmm-bench/src/bin/fig3_strong.rs:
