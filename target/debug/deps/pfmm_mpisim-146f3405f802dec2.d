/root/repo/target/debug/deps/pfmm_mpisim-146f3405f802dec2.d: crates/pfmm-mpisim/src/lib.rs crates/pfmm-mpisim/src/collectives.rs crates/pfmm-mpisim/src/comm.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_mpisim-146f3405f802dec2.rmeta: crates/pfmm-mpisim/src/lib.rs crates/pfmm-mpisim/src/collectives.rs crates/pfmm-mpisim/src/comm.rs Cargo.toml

crates/pfmm-mpisim/src/lib.rs:
crates/pfmm-mpisim/src/collectives.rs:
crates/pfmm-mpisim/src/comm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
