/root/repo/target/debug/deps/pfmm_kernels-f8152998c636c9c1.d: crates/pfmm-kernels/src/lib.rs crates/pfmm-kernels/src/dipole.rs crates/pfmm-kernels/src/direct.rs crates/pfmm-kernels/src/kernel.rs crates/pfmm-kernels/src/laplace.rs crates/pfmm-kernels/src/stokes.rs crates/pfmm-kernels/src/yukawa.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_kernels-f8152998c636c9c1.rmeta: crates/pfmm-kernels/src/lib.rs crates/pfmm-kernels/src/dipole.rs crates/pfmm-kernels/src/direct.rs crates/pfmm-kernels/src/kernel.rs crates/pfmm-kernels/src/laplace.rs crates/pfmm-kernels/src/stokes.rs crates/pfmm-kernels/src/yukawa.rs Cargo.toml

crates/pfmm-kernels/src/lib.rs:
crates/pfmm-kernels/src/dipole.rs:
crates/pfmm-kernels/src/direct.rs:
crates/pfmm-kernels/src/kernel.rs:
crates/pfmm-kernels/src/laplace.rs:
crates/pfmm-kernels/src/stokes.rs:
crates/pfmm-kernels/src/yukawa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
