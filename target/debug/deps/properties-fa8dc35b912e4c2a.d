/root/repo/target/debug/deps/properties-fa8dc35b912e4c2a.d: crates/pfmm-mpisim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-fa8dc35b912e4c2a.rmeta: crates/pfmm-mpisim/tests/properties.rs Cargo.toml

crates/pfmm-mpisim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
