/root/repo/target/debug/deps/pfmm_fft-dbd34e25a4c99e9a.d: crates/pfmm-fft/src/lib.rs crates/pfmm-fft/src/complex.rs crates/pfmm-fft/src/fft1d.rs crates/pfmm-fft/src/fft3d.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_fft-dbd34e25a4c99e9a.rmeta: crates/pfmm-fft/src/lib.rs crates/pfmm-fft/src/complex.rs crates/pfmm-fft/src/fft1d.rs crates/pfmm-fft/src/fft3d.rs Cargo.toml

crates/pfmm-fft/src/lib.rs:
crates/pfmm-fft/src/complex.rs:
crates/pfmm-fft/src/fft1d.rs:
crates/pfmm-fft/src/fft3d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
