/root/repo/target/debug/deps/invariants-a9e71263bc170c0c.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-a9e71263bc170c0c: tests/invariants.rs

tests/invariants.rs:
