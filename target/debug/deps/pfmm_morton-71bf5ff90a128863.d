/root/repo/target/debug/deps/pfmm_morton-71bf5ff90a128863.d: crates/pfmm-morton/src/lib.rs crates/pfmm-morton/src/key.rs crates/pfmm-morton/src/region.rs

/root/repo/target/debug/deps/libpfmm_morton-71bf5ff90a128863.rlib: crates/pfmm-morton/src/lib.rs crates/pfmm-morton/src/key.rs crates/pfmm-morton/src/region.rs

/root/repo/target/debug/deps/libpfmm_morton-71bf5ff90a128863.rmeta: crates/pfmm-morton/src/lib.rs crates/pfmm-morton/src/key.rs crates/pfmm-morton/src/region.rs

crates/pfmm-morton/src/lib.rs:
crates/pfmm-morton/src/key.rs:
crates/pfmm-morton/src/region.rs:
