/root/repo/target/debug/deps/proptest-7d057050da0c01e5.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-7d057050da0c01e5: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
