/root/repo/target/debug/deps/pfmm_mpisim-e1754e8aaf73b934.d: crates/pfmm-mpisim/src/lib.rs crates/pfmm-mpisim/src/collectives.rs crates/pfmm-mpisim/src/comm.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_mpisim-e1754e8aaf73b934.rmeta: crates/pfmm-mpisim/src/lib.rs crates/pfmm-mpisim/src/collectives.rs crates/pfmm-mpisim/src/comm.rs Cargo.toml

crates/pfmm-mpisim/src/lib.rs:
crates/pfmm-mpisim/src/collectives.rs:
crates/pfmm-mpisim/src/comm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
