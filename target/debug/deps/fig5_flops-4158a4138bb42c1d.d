/root/repo/target/debug/deps/fig5_flops-4158a4138bb42c1d.d: crates/pfmm-bench/src/bin/fig5_flops.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_flops-4158a4138bb42c1d.rmeta: crates/pfmm-bench/src/bin/fig5_flops.rs Cargo.toml

crates/pfmm-bench/src/bin/fig5_flops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
