/root/repo/target/debug/deps/linalg-ac3278c35898f9cb.d: crates/pfmm-bench/benches/linalg.rs Cargo.toml

/root/repo/target/debug/deps/liblinalg-ac3278c35898f9cb.rmeta: crates/pfmm-bench/benches/linalg.rs Cargo.toml

crates/pfmm-bench/benches/linalg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
