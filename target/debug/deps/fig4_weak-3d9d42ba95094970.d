/root/repo/target/debug/deps/fig4_weak-3d9d42ba95094970.d: crates/pfmm-bench/src/bin/fig4_weak.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_weak-3d9d42ba95094970.rmeta: crates/pfmm-bench/src/bin/fig4_weak.rs Cargo.toml

crates/pfmm-bench/src/bin/fig4_weak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
