/root/repo/target/debug/deps/pfmm-32e141109bae11fd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm-32e141109bae11fd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
