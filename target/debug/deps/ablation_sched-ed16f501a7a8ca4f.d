/root/repo/target/debug/deps/ablation_sched-ed16f501a7a8ca4f.d: crates/pfmm-bench/src/bin/ablation_sched.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sched-ed16f501a7a8ca4f.rmeta: crates/pfmm-bench/src/bin/ablation_sched.rs Cargo.toml

crates/pfmm-bench/src/bin/ablation_sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
