/root/repo/target/debug/deps/pfmm_gpusim-6d2a76efa150104b.d: crates/pfmm-gpusim/src/lib.rs crates/pfmm-gpusim/src/device.rs crates/pfmm-gpusim/src/fmm.rs crates/pfmm-gpusim/src/kernels.rs crates/pfmm-gpusim/src/layout.rs crates/pfmm-gpusim/src/tune.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_gpusim-6d2a76efa150104b.rmeta: crates/pfmm-gpusim/src/lib.rs crates/pfmm-gpusim/src/device.rs crates/pfmm-gpusim/src/fmm.rs crates/pfmm-gpusim/src/kernels.rs crates/pfmm-gpusim/src/layout.rs crates/pfmm-gpusim/src/tune.rs Cargo.toml

crates/pfmm-gpusim/src/lib.rs:
crates/pfmm-gpusim/src/device.rs:
crates/pfmm-gpusim/src/fmm.rs:
crates/pfmm-gpusim/src/kernels.rs:
crates/pfmm-gpusim/src/layout.rs:
crates/pfmm-gpusim/src/tune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
