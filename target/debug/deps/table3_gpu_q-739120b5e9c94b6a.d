/root/repo/target/debug/deps/table3_gpu_q-739120b5e9c94b6a.d: crates/pfmm-bench/src/bin/table3_gpu_q.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_gpu_q-739120b5e9c94b6a.rmeta: crates/pfmm-bench/src/bin/table3_gpu_q.rs Cargo.toml

crates/pfmm-bench/src/bin/table3_gpu_q.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
