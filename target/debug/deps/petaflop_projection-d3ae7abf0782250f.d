/root/repo/target/debug/deps/petaflop_projection-d3ae7abf0782250f.d: crates/pfmm-bench/src/bin/petaflop_projection.rs Cargo.toml

/root/repo/target/debug/deps/libpetaflop_projection-d3ae7abf0782250f.rmeta: crates/pfmm-bench/src/bin/petaflop_projection.rs Cargo.toml

crates/pfmm-bench/src/bin/petaflop_projection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
