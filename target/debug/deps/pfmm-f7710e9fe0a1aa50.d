/root/repo/target/debug/deps/pfmm-f7710e9fe0a1aa50.d: src/lib.rs

/root/repo/target/debug/deps/libpfmm-f7710e9fe0a1aa50.rlib: src/lib.rs

/root/repo/target/debug/deps/libpfmm-f7710e9fe0a1aa50.rmeta: src/lib.rs

src/lib.rs:
