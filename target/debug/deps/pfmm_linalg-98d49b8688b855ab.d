/root/repo/target/debug/deps/pfmm_linalg-98d49b8688b855ab.d: crates/pfmm-linalg/src/lib.rs crates/pfmm-linalg/src/matrix.rs crates/pfmm-linalg/src/svd.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_linalg-98d49b8688b855ab.rmeta: crates/pfmm-linalg/src/lib.rs crates/pfmm-linalg/src/matrix.rs crates/pfmm-linalg/src/svd.rs Cargo.toml

crates/pfmm-linalg/src/lib.rs:
crates/pfmm-linalg/src/matrix.rs:
crates/pfmm-linalg/src/svd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
