/root/repo/target/debug/deps/fig4_weak-8d9733813f45a8dc.d: crates/pfmm-bench/src/bin/fig4_weak.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_weak-8d9733813f45a8dc.rmeta: crates/pfmm-bench/src/bin/fig4_weak.rs Cargo.toml

crates/pfmm-bench/src/bin/fig4_weak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
