/root/repo/target/debug/deps/properties-4abb713dc7696c3d.d: crates/pfmm-fft/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4abb713dc7696c3d.rmeta: crates/pfmm-fft/tests/properties.rs Cargo.toml

crates/pfmm-fft/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
