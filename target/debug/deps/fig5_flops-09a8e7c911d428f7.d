/root/repo/target/debug/deps/fig5_flops-09a8e7c911d428f7.d: crates/pfmm-bench/src/bin/fig5_flops.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_flops-09a8e7c911d428f7.rmeta: crates/pfmm-bench/src/bin/fig5_flops.rs Cargo.toml

crates/pfmm-bench/src/bin/fig5_flops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
