/root/repo/target/debug/deps/pfmm_core-0d84d6250f1d0abe.d: crates/pfmm-core/src/lib.rs crates/pfmm-core/src/distrib.rs crates/pfmm-core/src/driver.rs crates/pfmm-core/src/exec.rs crates/pfmm-core/src/m2l_fft.rs crates/pfmm-core/src/ops.rs crates/pfmm-core/src/par.rs crates/pfmm-core/src/plan.rs crates/pfmm-core/src/profile.rs crates/pfmm-core/src/reduce.rs crates/pfmm-core/src/solve.rs crates/pfmm-core/src/surface.rs crates/pfmm-core/src/tune.rs crates/pfmm-core/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_core-0d84d6250f1d0abe.rmeta: crates/pfmm-core/src/lib.rs crates/pfmm-core/src/distrib.rs crates/pfmm-core/src/driver.rs crates/pfmm-core/src/exec.rs crates/pfmm-core/src/m2l_fft.rs crates/pfmm-core/src/ops.rs crates/pfmm-core/src/par.rs crates/pfmm-core/src/plan.rs crates/pfmm-core/src/profile.rs crates/pfmm-core/src/reduce.rs crates/pfmm-core/src/solve.rs crates/pfmm-core/src/surface.rs crates/pfmm-core/src/tune.rs crates/pfmm-core/src/verify.rs Cargo.toml

crates/pfmm-core/src/lib.rs:
crates/pfmm-core/src/distrib.rs:
crates/pfmm-core/src/driver.rs:
crates/pfmm-core/src/exec.rs:
crates/pfmm-core/src/m2l_fft.rs:
crates/pfmm-core/src/ops.rs:
crates/pfmm-core/src/par.rs:
crates/pfmm-core/src/plan.rs:
crates/pfmm-core/src/profile.rs:
crates/pfmm-core/src/reduce.rs:
crates/pfmm-core/src/solve.rs:
crates/pfmm-core/src/surface.rs:
crates/pfmm-core/src/tune.rs:
crates/pfmm-core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
