/root/repo/target/debug/deps/ablation_balance-477e65b4a69dc776.d: crates/pfmm-bench/src/bin/ablation_balance.rs

/root/repo/target/debug/deps/ablation_balance-477e65b4a69dc776: crates/pfmm-bench/src/bin/ablation_balance.rs

crates/pfmm-bench/src/bin/ablation_balance.rs:
