/root/repo/target/debug/deps/pfmm_mpisim-526bb59b347b9f6b.d: crates/pfmm-mpisim/src/lib.rs crates/pfmm-mpisim/src/collectives.rs crates/pfmm-mpisim/src/comm.rs

/root/repo/target/debug/deps/pfmm_mpisim-526bb59b347b9f6b: crates/pfmm-mpisim/src/lib.rs crates/pfmm-mpisim/src/collectives.rs crates/pfmm-mpisim/src/comm.rs

crates/pfmm-mpisim/src/lib.rs:
crates/pfmm-mpisim/src/collectives.rs:
crates/pfmm-mpisim/src/comm.rs:
