/root/repo/target/debug/deps/pfmm_fft-f5a90684694144eb.d: crates/pfmm-fft/src/lib.rs crates/pfmm-fft/src/complex.rs crates/pfmm-fft/src/fft1d.rs crates/pfmm-fft/src/fft3d.rs

/root/repo/target/debug/deps/pfmm_fft-f5a90684694144eb: crates/pfmm-fft/src/lib.rs crates/pfmm-fft/src/complex.rs crates/pfmm-fft/src/fft1d.rs crates/pfmm-fft/src/fft3d.rs

crates/pfmm-fft/src/lib.rs:
crates/pfmm-fft/src/complex.rs:
crates/pfmm-fft/src/fft1d.rs:
crates/pfmm-fft/src/fft3d.rs:
