/root/repo/target/debug/deps/fft-f4f5b889703f3bb1.d: crates/pfmm-bench/benches/fft.rs Cargo.toml

/root/repo/target/debug/deps/libfft-f4f5b889703f3bb1.rmeta: crates/pfmm-bench/benches/fft.rs Cargo.toml

crates/pfmm-bench/benches/fft.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
