/root/repo/target/debug/deps/petaflop_projection-107115805a7ea4cd.d: crates/pfmm-bench/src/bin/petaflop_projection.rs Cargo.toml

/root/repo/target/debug/deps/libpetaflop_projection-107115805a7ea4cd.rmeta: crates/pfmm-bench/src/bin/petaflop_projection.rs Cargo.toml

crates/pfmm-bench/src/bin/petaflop_projection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
