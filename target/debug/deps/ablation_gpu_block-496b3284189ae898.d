/root/repo/target/debug/deps/ablation_gpu_block-496b3284189ae898.d: crates/pfmm-bench/src/bin/ablation_gpu_block.rs Cargo.toml

/root/repo/target/debug/deps/libablation_gpu_block-496b3284189ae898.rmeta: crates/pfmm-bench/src/bin/ablation_gpu_block.rs Cargo.toml

crates/pfmm-bench/src/bin/ablation_gpu_block.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
