/root/repo/target/debug/deps/morton-6cb359744c9bdbf3.d: crates/pfmm-bench/benches/morton.rs Cargo.toml

/root/repo/target/debug/deps/libmorton-6cb359744c9bdbf3.rmeta: crates/pfmm-bench/benches/morton.rs Cargo.toml

crates/pfmm-bench/benches/morton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
