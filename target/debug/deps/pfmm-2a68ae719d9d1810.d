/root/repo/target/debug/deps/pfmm-2a68ae719d9d1810.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm-2a68ae719d9d1810.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
