/root/repo/target/debug/deps/ablation_gpu_block-86ad20f1249143aa.d: crates/pfmm-bench/src/bin/ablation_gpu_block.rs

/root/repo/target/debug/deps/ablation_gpu_block-86ad20f1249143aa: crates/pfmm-bench/src/bin/ablation_gpu_block.rs

crates/pfmm-bench/src/bin/ablation_gpu_block.rs:
