/root/repo/target/debug/deps/table3_gpu_q-68be31c9c16c3d21.d: crates/pfmm-bench/src/bin/table3_gpu_q.rs

/root/repo/target/debug/deps/table3_gpu_q-68be31c9c16c3d21: crates/pfmm-bench/src/bin/table3_gpu_q.rs

crates/pfmm-bench/src/bin/table3_gpu_q.rs:
