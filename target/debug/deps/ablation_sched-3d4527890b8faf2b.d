/root/repo/target/debug/deps/ablation_sched-3d4527890b8faf2b.d: crates/pfmm-bench/src/bin/ablation_sched.rs

/root/repo/target/debug/deps/ablation_sched-3d4527890b8faf2b: crates/pfmm-bench/src/bin/ablation_sched.rs

crates/pfmm-bench/src/bin/ablation_sched.rs:
