/root/repo/target/debug/deps/accuracy-73de079937fb6b5c.d: tests/accuracy.rs

/root/repo/target/debug/deps/accuracy-73de079937fb6b5c: tests/accuracy.rs

tests/accuracy.rs:
