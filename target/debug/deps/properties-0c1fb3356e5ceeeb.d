/root/repo/target/debug/deps/properties-0c1fb3356e5ceeeb.d: crates/pfmm-fft/tests/properties.rs

/root/repo/target/debug/deps/properties-0c1fb3356e5ceeeb: crates/pfmm-fft/tests/properties.rs

crates/pfmm-fft/tests/properties.rs:
