/root/repo/target/debug/deps/pfmm_perfmodel-5fb93648287633a4.d: crates/pfmm-perfmodel/src/lib.rs

/root/repo/target/debug/deps/libpfmm_perfmodel-5fb93648287633a4.rlib: crates/pfmm-perfmodel/src/lib.rs

/root/repo/target/debug/deps/libpfmm_perfmodel-5fb93648287633a4.rmeta: crates/pfmm-perfmodel/src/lib.rs

crates/pfmm-perfmodel/src/lib.rs:
