/root/repo/target/debug/deps/pfmm-49ab9f2cdf26730f.d: crates/pfmm-cli/src/main.rs crates/pfmm-cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm-49ab9f2cdf26730f.rmeta: crates/pfmm-cli/src/main.rs crates/pfmm-cli/src/args.rs Cargo.toml

crates/pfmm-cli/src/main.rs:
crates/pfmm-cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
