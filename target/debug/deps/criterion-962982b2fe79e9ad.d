/root/repo/target/debug/deps/criterion-962982b2fe79e9ad.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-962982b2fe79e9ad: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
