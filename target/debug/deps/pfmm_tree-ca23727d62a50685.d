/root/repo/target/debug/deps/pfmm_tree-ca23727d62a50685.d: crates/pfmm-tree/src/lib.rs crates/pfmm-tree/src/balance.rs crates/pfmm-tree/src/bitonic.rs crates/pfmm-tree/src/dtree.rs crates/pfmm-tree/src/lett.rs crates/pfmm-tree/src/lists.rs crates/pfmm-tree/src/point.rs crates/pfmm-tree/src/sort.rs crates/pfmm-tree/src/stats.rs

/root/repo/target/debug/deps/libpfmm_tree-ca23727d62a50685.rlib: crates/pfmm-tree/src/lib.rs crates/pfmm-tree/src/balance.rs crates/pfmm-tree/src/bitonic.rs crates/pfmm-tree/src/dtree.rs crates/pfmm-tree/src/lett.rs crates/pfmm-tree/src/lists.rs crates/pfmm-tree/src/point.rs crates/pfmm-tree/src/sort.rs crates/pfmm-tree/src/stats.rs

/root/repo/target/debug/deps/libpfmm_tree-ca23727d62a50685.rmeta: crates/pfmm-tree/src/lib.rs crates/pfmm-tree/src/balance.rs crates/pfmm-tree/src/bitonic.rs crates/pfmm-tree/src/dtree.rs crates/pfmm-tree/src/lett.rs crates/pfmm-tree/src/lists.rs crates/pfmm-tree/src/point.rs crates/pfmm-tree/src/sort.rs crates/pfmm-tree/src/stats.rs

crates/pfmm-tree/src/lib.rs:
crates/pfmm-tree/src/balance.rs:
crates/pfmm-tree/src/bitonic.rs:
crates/pfmm-tree/src/dtree.rs:
crates/pfmm-tree/src/lett.rs:
crates/pfmm-tree/src/lists.rs:
crates/pfmm-tree/src/point.rs:
crates/pfmm-tree/src/sort.rs:
crates/pfmm-tree/src/stats.rs:
