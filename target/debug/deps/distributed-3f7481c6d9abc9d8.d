/root/repo/target/debug/deps/distributed-3f7481c6d9abc9d8.d: tests/distributed.rs

/root/repo/target/debug/deps/distributed-3f7481c6d9abc9d8: tests/distributed.rs

tests/distributed.rs:
