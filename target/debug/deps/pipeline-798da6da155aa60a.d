/root/repo/target/debug/deps/pipeline-798da6da155aa60a.d: crates/pfmm-bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-798da6da155aa60a.rmeta: crates/pfmm-bench/benches/pipeline.rs Cargo.toml

crates/pfmm-bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
