/root/repo/target/debug/deps/pfmm_kernels-f3ce3fce5064a7fc.d: crates/pfmm-kernels/src/lib.rs crates/pfmm-kernels/src/dipole.rs crates/pfmm-kernels/src/direct.rs crates/pfmm-kernels/src/kernel.rs crates/pfmm-kernels/src/laplace.rs crates/pfmm-kernels/src/stokes.rs crates/pfmm-kernels/src/yukawa.rs

/root/repo/target/debug/deps/pfmm_kernels-f3ce3fce5064a7fc: crates/pfmm-kernels/src/lib.rs crates/pfmm-kernels/src/dipole.rs crates/pfmm-kernels/src/direct.rs crates/pfmm-kernels/src/kernel.rs crates/pfmm-kernels/src/laplace.rs crates/pfmm-kernels/src/stokes.rs crates/pfmm-kernels/src/yukawa.rs

crates/pfmm-kernels/src/lib.rs:
crates/pfmm-kernels/src/dipole.rs:
crates/pfmm-kernels/src/direct.rs:
crates/pfmm-kernels/src/kernel.rs:
crates/pfmm-kernels/src/laplace.rs:
crates/pfmm-kernels/src/stokes.rs:
crates/pfmm-kernels/src/yukawa.rs:
