/root/repo/target/debug/deps/pfmm-9f9349298a9cf50e.d: crates/pfmm-cli/src/main.rs crates/pfmm-cli/src/args.rs

/root/repo/target/debug/deps/pfmm-9f9349298a9cf50e: crates/pfmm-cli/src/main.rs crates/pfmm-cli/src/args.rs

crates/pfmm-cli/src/main.rs:
crates/pfmm-cli/src/args.rs:
