/root/repo/target/debug/deps/pfmm_bench-bcb4099cab475b28.d: crates/pfmm-bench/src/lib.rs

/root/repo/target/debug/deps/pfmm_bench-bcb4099cab475b28: crates/pfmm-bench/src/lib.rs

crates/pfmm-bench/src/lib.rs:
