/root/repo/target/debug/deps/properties-79ee4b0740248938.d: crates/pfmm-linalg/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-79ee4b0740248938.rmeta: crates/pfmm-linalg/tests/properties.rs Cargo.toml

crates/pfmm-linalg/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
