/root/repo/target/debug/deps/criterion-df41c0d2999576d7.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-df41c0d2999576d7.rlib: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-df41c0d2999576d7.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
