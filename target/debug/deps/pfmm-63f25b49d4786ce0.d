/root/repo/target/debug/deps/pfmm-63f25b49d4786ce0.d: src/lib.rs

/root/repo/target/debug/deps/libpfmm-63f25b49d4786ce0.rlib: src/lib.rs

/root/repo/target/debug/deps/libpfmm-63f25b49d4786ce0.rmeta: src/lib.rs

src/lib.rs:
