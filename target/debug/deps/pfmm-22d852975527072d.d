/root/repo/target/debug/deps/pfmm-22d852975527072d.d: src/lib.rs

/root/repo/target/debug/deps/pfmm-22d852975527072d: src/lib.rs

src/lib.rs:
