/root/repo/target/debug/deps/gpu_pipeline-24bef2eaf019d040.d: tests/gpu_pipeline.rs

/root/repo/target/debug/deps/gpu_pipeline-24bef2eaf019d040: tests/gpu_pipeline.rs

tests/gpu_pipeline.rs:
