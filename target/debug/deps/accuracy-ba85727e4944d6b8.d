/root/repo/target/debug/deps/accuracy-ba85727e4944d6b8.d: tests/accuracy.rs

/root/repo/target/debug/deps/accuracy-ba85727e4944d6b8: tests/accuracy.rs

tests/accuracy.rs:
