/root/repo/target/debug/deps/failure_modes-88d9d725d2f27ffb.d: tests/failure_modes.rs

/root/repo/target/debug/deps/failure_modes-88d9d725d2f27ffb: tests/failure_modes.rs

tests/failure_modes.rs:
