/root/repo/target/debug/deps/ablation_balance-62583029ab499eab.d: crates/pfmm-bench/src/bin/ablation_balance.rs Cargo.toml

/root/repo/target/debug/deps/libablation_balance-62583029ab499eab.rmeta: crates/pfmm-bench/src/bin/ablation_balance.rs Cargo.toml

crates/pfmm-bench/src/bin/ablation_balance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
