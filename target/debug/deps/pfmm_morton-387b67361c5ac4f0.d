/root/repo/target/debug/deps/pfmm_morton-387b67361c5ac4f0.d: crates/pfmm-morton/src/lib.rs crates/pfmm-morton/src/key.rs crates/pfmm-morton/src/region.rs

/root/repo/target/debug/deps/pfmm_morton-387b67361c5ac4f0: crates/pfmm-morton/src/lib.rs crates/pfmm-morton/src/key.rs crates/pfmm-morton/src/region.rs

crates/pfmm-morton/src/lib.rs:
crates/pfmm-morton/src/key.rs:
crates/pfmm-morton/src/region.rs:
