/root/repo/target/debug/deps/table2_breakdown-a1e1905e1802c905.d: crates/pfmm-bench/src/bin/table2_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_breakdown-a1e1905e1802c905.rmeta: crates/pfmm-bench/src/bin/table2_breakdown.rs Cargo.toml

crates/pfmm-bench/src/bin/table2_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
