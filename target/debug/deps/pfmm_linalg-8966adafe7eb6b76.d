/root/repo/target/debug/deps/pfmm_linalg-8966adafe7eb6b76.d: crates/pfmm-linalg/src/lib.rs crates/pfmm-linalg/src/matrix.rs crates/pfmm-linalg/src/svd.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_linalg-8966adafe7eb6b76.rmeta: crates/pfmm-linalg/src/lib.rs crates/pfmm-linalg/src/matrix.rs crates/pfmm-linalg/src/svd.rs Cargo.toml

crates/pfmm-linalg/src/lib.rs:
crates/pfmm-linalg/src/matrix.rs:
crates/pfmm-linalg/src/svd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
