/root/repo/target/debug/deps/gpu_kernels-f353bfd53d4059ed.d: crates/pfmm-bench/benches/gpu_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_kernels-f353bfd53d4059ed.rmeta: crates/pfmm-bench/benches/gpu_kernels.rs Cargo.toml

crates/pfmm-bench/benches/gpu_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
