/root/repo/target/debug/deps/m2l-3a720ae2ba3d7631.d: crates/pfmm-bench/benches/m2l.rs Cargo.toml

/root/repo/target/debug/deps/libm2l-3a720ae2ba3d7631.rmeta: crates/pfmm-bench/benches/m2l.rs Cargo.toml

crates/pfmm-bench/benches/m2l.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
