/root/repo/target/debug/deps/ablation_m2l-eaef080bceaa5be8.d: crates/pfmm-bench/src/bin/ablation_m2l.rs Cargo.toml

/root/repo/target/debug/deps/libablation_m2l-eaef080bceaa5be8.rmeta: crates/pfmm-bench/src/bin/ablation_m2l.rs Cargo.toml

crates/pfmm-bench/src/bin/ablation_m2l.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
