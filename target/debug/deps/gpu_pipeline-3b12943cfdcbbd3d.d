/root/repo/target/debug/deps/gpu_pipeline-3b12943cfdcbbd3d.d: tests/gpu_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_pipeline-3b12943cfdcbbd3d.rmeta: tests/gpu_pipeline.rs Cargo.toml

tests/gpu_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
