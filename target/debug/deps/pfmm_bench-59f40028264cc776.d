/root/repo/target/debug/deps/pfmm_bench-59f40028264cc776.d: crates/pfmm-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpfmm_bench-59f40028264cc776.rmeta: crates/pfmm-bench/src/lib.rs Cargo.toml

crates/pfmm-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
