/root/repo/target/debug/deps/pfmm_linalg-1f6bfbf6fb4eda81.d: crates/pfmm-linalg/src/lib.rs crates/pfmm-linalg/src/matrix.rs crates/pfmm-linalg/src/svd.rs

/root/repo/target/debug/deps/libpfmm_linalg-1f6bfbf6fb4eda81.rlib: crates/pfmm-linalg/src/lib.rs crates/pfmm-linalg/src/matrix.rs crates/pfmm-linalg/src/svd.rs

/root/repo/target/debug/deps/libpfmm_linalg-1f6bfbf6fb4eda81.rmeta: crates/pfmm-linalg/src/lib.rs crates/pfmm-linalg/src/matrix.rs crates/pfmm-linalg/src/svd.rs

crates/pfmm-linalg/src/lib.rs:
crates/pfmm-linalg/src/matrix.rs:
crates/pfmm-linalg/src/svd.rs:
