/root/repo/target/debug/deps/pfmm_kernels-d55cb4d0ffb34eab.d: crates/pfmm-kernels/src/lib.rs crates/pfmm-kernels/src/dipole.rs crates/pfmm-kernels/src/direct.rs crates/pfmm-kernels/src/kernel.rs crates/pfmm-kernels/src/laplace.rs crates/pfmm-kernels/src/stokes.rs crates/pfmm-kernels/src/yukawa.rs

/root/repo/target/debug/deps/libpfmm_kernels-d55cb4d0ffb34eab.rlib: crates/pfmm-kernels/src/lib.rs crates/pfmm-kernels/src/dipole.rs crates/pfmm-kernels/src/direct.rs crates/pfmm-kernels/src/kernel.rs crates/pfmm-kernels/src/laplace.rs crates/pfmm-kernels/src/stokes.rs crates/pfmm-kernels/src/yukawa.rs

/root/repo/target/debug/deps/libpfmm_kernels-d55cb4d0ffb34eab.rmeta: crates/pfmm-kernels/src/lib.rs crates/pfmm-kernels/src/dipole.rs crates/pfmm-kernels/src/direct.rs crates/pfmm-kernels/src/kernel.rs crates/pfmm-kernels/src/laplace.rs crates/pfmm-kernels/src/stokes.rs crates/pfmm-kernels/src/yukawa.rs

crates/pfmm-kernels/src/lib.rs:
crates/pfmm-kernels/src/dipole.rs:
crates/pfmm-kernels/src/direct.rs:
crates/pfmm-kernels/src/kernel.rs:
crates/pfmm-kernels/src/laplace.rs:
crates/pfmm-kernels/src/stokes.rs:
crates/pfmm-kernels/src/yukawa.rs:
