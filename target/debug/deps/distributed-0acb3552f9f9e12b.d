/root/repo/target/debug/deps/distributed-0acb3552f9f9e12b.d: tests/distributed.rs

/root/repo/target/debug/deps/distributed-0acb3552f9f9e12b: tests/distributed.rs

tests/distributed.rs:
