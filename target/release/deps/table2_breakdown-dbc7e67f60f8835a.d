/root/repo/target/release/deps/table2_breakdown-dbc7e67f60f8835a.d: crates/pfmm-bench/src/bin/table2_breakdown.rs

/root/repo/target/release/deps/table2_breakdown-dbc7e67f60f8835a: crates/pfmm-bench/src/bin/table2_breakdown.rs

crates/pfmm-bench/src/bin/table2_breakdown.rs:
