/root/repo/target/release/deps/pfmm_kernels-8d604a20a3f79443.d: crates/pfmm-kernels/src/lib.rs crates/pfmm-kernels/src/dipole.rs crates/pfmm-kernels/src/direct.rs crates/pfmm-kernels/src/kernel.rs crates/pfmm-kernels/src/laplace.rs crates/pfmm-kernels/src/stokes.rs crates/pfmm-kernels/src/yukawa.rs

/root/repo/target/release/deps/libpfmm_kernels-8d604a20a3f79443.rlib: crates/pfmm-kernels/src/lib.rs crates/pfmm-kernels/src/dipole.rs crates/pfmm-kernels/src/direct.rs crates/pfmm-kernels/src/kernel.rs crates/pfmm-kernels/src/laplace.rs crates/pfmm-kernels/src/stokes.rs crates/pfmm-kernels/src/yukawa.rs

/root/repo/target/release/deps/libpfmm_kernels-8d604a20a3f79443.rmeta: crates/pfmm-kernels/src/lib.rs crates/pfmm-kernels/src/dipole.rs crates/pfmm-kernels/src/direct.rs crates/pfmm-kernels/src/kernel.rs crates/pfmm-kernels/src/laplace.rs crates/pfmm-kernels/src/stokes.rs crates/pfmm-kernels/src/yukawa.rs

crates/pfmm-kernels/src/lib.rs:
crates/pfmm-kernels/src/dipole.rs:
crates/pfmm-kernels/src/direct.rs:
crates/pfmm-kernels/src/kernel.rs:
crates/pfmm-kernels/src/laplace.rs:
crates/pfmm-kernels/src/stokes.rs:
crates/pfmm-kernels/src/yukawa.rs:
