/root/repo/target/release/deps/pfmm-74f5ce5301390189.d: src/lib.rs

/root/repo/target/release/deps/libpfmm-74f5ce5301390189.rlib: src/lib.rs

/root/repo/target/release/deps/libpfmm-74f5ce5301390189.rmeta: src/lib.rs

src/lib.rs:
