/root/repo/target/release/deps/ablation_sched-2ff39e9db533c38f.d: crates/pfmm-bench/src/bin/ablation_sched.rs

/root/repo/target/release/deps/ablation_sched-2ff39e9db533c38f: crates/pfmm-bench/src/bin/ablation_sched.rs

crates/pfmm-bench/src/bin/ablation_sched.rs:
