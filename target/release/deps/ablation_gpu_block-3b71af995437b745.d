/root/repo/target/release/deps/ablation_gpu_block-3b71af995437b745.d: crates/pfmm-bench/src/bin/ablation_gpu_block.rs

/root/repo/target/release/deps/ablation_gpu_block-3b71af995437b745: crates/pfmm-bench/src/bin/ablation_gpu_block.rs

crates/pfmm-bench/src/bin/ablation_gpu_block.rs:
