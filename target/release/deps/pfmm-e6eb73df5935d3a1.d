/root/repo/target/release/deps/pfmm-e6eb73df5935d3a1.d: crates/pfmm-cli/src/main.rs crates/pfmm-cli/src/args.rs

/root/repo/target/release/deps/pfmm-e6eb73df5935d3a1: crates/pfmm-cli/src/main.rs crates/pfmm-cli/src/args.rs

crates/pfmm-cli/src/main.rs:
crates/pfmm-cli/src/args.rs:
