/root/repo/target/release/deps/crossbeam-445c38abb93248a3.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-445c38abb93248a3.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-445c38abb93248a3.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
