/root/repo/target/release/deps/pfmm_morton-03ebf6c2c28ed6d1.d: crates/pfmm-morton/src/lib.rs crates/pfmm-morton/src/key.rs crates/pfmm-morton/src/region.rs

/root/repo/target/release/deps/libpfmm_morton-03ebf6c2c28ed6d1.rlib: crates/pfmm-morton/src/lib.rs crates/pfmm-morton/src/key.rs crates/pfmm-morton/src/region.rs

/root/repo/target/release/deps/libpfmm_morton-03ebf6c2c28ed6d1.rmeta: crates/pfmm-morton/src/lib.rs crates/pfmm-morton/src/key.rs crates/pfmm-morton/src/region.rs

crates/pfmm-morton/src/lib.rs:
crates/pfmm-morton/src/key.rs:
crates/pfmm-morton/src/region.rs:
