/root/repo/target/release/deps/pfmm_mpisim-6000012c04bd7df5.d: crates/pfmm-mpisim/src/lib.rs crates/pfmm-mpisim/src/collectives.rs crates/pfmm-mpisim/src/comm.rs

/root/repo/target/release/deps/libpfmm_mpisim-6000012c04bd7df5.rlib: crates/pfmm-mpisim/src/lib.rs crates/pfmm-mpisim/src/collectives.rs crates/pfmm-mpisim/src/comm.rs

/root/repo/target/release/deps/libpfmm_mpisim-6000012c04bd7df5.rmeta: crates/pfmm-mpisim/src/lib.rs crates/pfmm-mpisim/src/collectives.rs crates/pfmm-mpisim/src/comm.rs

crates/pfmm-mpisim/src/lib.rs:
crates/pfmm-mpisim/src/collectives.rs:
crates/pfmm-mpisim/src/comm.rs:
