/root/repo/target/release/deps/petaflop_projection-b7d172b5f416af56.d: crates/pfmm-bench/src/bin/petaflop_projection.rs

/root/repo/target/release/deps/petaflop_projection-b7d172b5f416af56: crates/pfmm-bench/src/bin/petaflop_projection.rs

crates/pfmm-bench/src/bin/petaflop_projection.rs:
