/root/repo/target/release/deps/pfmm_fft-2f5c8e6b6380294f.d: crates/pfmm-fft/src/lib.rs crates/pfmm-fft/src/complex.rs crates/pfmm-fft/src/fft1d.rs crates/pfmm-fft/src/fft3d.rs

/root/repo/target/release/deps/libpfmm_fft-2f5c8e6b6380294f.rlib: crates/pfmm-fft/src/lib.rs crates/pfmm-fft/src/complex.rs crates/pfmm-fft/src/fft1d.rs crates/pfmm-fft/src/fft3d.rs

/root/repo/target/release/deps/libpfmm_fft-2f5c8e6b6380294f.rmeta: crates/pfmm-fft/src/lib.rs crates/pfmm-fft/src/complex.rs crates/pfmm-fft/src/fft1d.rs crates/pfmm-fft/src/fft3d.rs

crates/pfmm-fft/src/lib.rs:
crates/pfmm-fft/src/complex.rs:
crates/pfmm-fft/src/fft1d.rs:
crates/pfmm-fft/src/fft3d.rs:
