/root/repo/target/release/deps/pfmm_linalg-ec4a67a662753f8a.d: crates/pfmm-linalg/src/lib.rs crates/pfmm-linalg/src/matrix.rs crates/pfmm-linalg/src/svd.rs

/root/repo/target/release/deps/libpfmm_linalg-ec4a67a662753f8a.rlib: crates/pfmm-linalg/src/lib.rs crates/pfmm-linalg/src/matrix.rs crates/pfmm-linalg/src/svd.rs

/root/repo/target/release/deps/libpfmm_linalg-ec4a67a662753f8a.rmeta: crates/pfmm-linalg/src/lib.rs crates/pfmm-linalg/src/matrix.rs crates/pfmm-linalg/src/svd.rs

crates/pfmm-linalg/src/lib.rs:
crates/pfmm-linalg/src/matrix.rs:
crates/pfmm-linalg/src/svd.rs:
