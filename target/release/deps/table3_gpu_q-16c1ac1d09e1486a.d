/root/repo/target/release/deps/table3_gpu_q-16c1ac1d09e1486a.d: crates/pfmm-bench/src/bin/table3_gpu_q.rs

/root/repo/target/release/deps/table3_gpu_q-16c1ac1d09e1486a: crates/pfmm-bench/src/bin/table3_gpu_q.rs

crates/pfmm-bench/src/bin/table3_gpu_q.rs:
