/root/repo/target/release/deps/pfmm_tree-b48db31ba1ccfdb8.d: crates/pfmm-tree/src/lib.rs crates/pfmm-tree/src/balance.rs crates/pfmm-tree/src/bitonic.rs crates/pfmm-tree/src/dtree.rs crates/pfmm-tree/src/lett.rs crates/pfmm-tree/src/lists.rs crates/pfmm-tree/src/point.rs crates/pfmm-tree/src/sort.rs crates/pfmm-tree/src/stats.rs

/root/repo/target/release/deps/libpfmm_tree-b48db31ba1ccfdb8.rlib: crates/pfmm-tree/src/lib.rs crates/pfmm-tree/src/balance.rs crates/pfmm-tree/src/bitonic.rs crates/pfmm-tree/src/dtree.rs crates/pfmm-tree/src/lett.rs crates/pfmm-tree/src/lists.rs crates/pfmm-tree/src/point.rs crates/pfmm-tree/src/sort.rs crates/pfmm-tree/src/stats.rs

/root/repo/target/release/deps/libpfmm_tree-b48db31ba1ccfdb8.rmeta: crates/pfmm-tree/src/lib.rs crates/pfmm-tree/src/balance.rs crates/pfmm-tree/src/bitonic.rs crates/pfmm-tree/src/dtree.rs crates/pfmm-tree/src/lett.rs crates/pfmm-tree/src/lists.rs crates/pfmm-tree/src/point.rs crates/pfmm-tree/src/sort.rs crates/pfmm-tree/src/stats.rs

crates/pfmm-tree/src/lib.rs:
crates/pfmm-tree/src/balance.rs:
crates/pfmm-tree/src/bitonic.rs:
crates/pfmm-tree/src/dtree.rs:
crates/pfmm-tree/src/lett.rs:
crates/pfmm-tree/src/lists.rs:
crates/pfmm-tree/src/point.rs:
crates/pfmm-tree/src/sort.rs:
crates/pfmm-tree/src/stats.rs:
