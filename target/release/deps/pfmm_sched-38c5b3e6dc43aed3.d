/root/repo/target/release/deps/pfmm_sched-38c5b3e6dc43aed3.d: crates/pfmm-sched/src/lib.rs crates/pfmm-sched/src/buf.rs crates/pfmm-sched/src/exec.rs crates/pfmm-sched/src/graph.rs

/root/repo/target/release/deps/libpfmm_sched-38c5b3e6dc43aed3.rlib: crates/pfmm-sched/src/lib.rs crates/pfmm-sched/src/buf.rs crates/pfmm-sched/src/exec.rs crates/pfmm-sched/src/graph.rs

/root/repo/target/release/deps/libpfmm_sched-38c5b3e6dc43aed3.rmeta: crates/pfmm-sched/src/lib.rs crates/pfmm-sched/src/buf.rs crates/pfmm-sched/src/exec.rs crates/pfmm-sched/src/graph.rs

crates/pfmm-sched/src/lib.rs:
crates/pfmm-sched/src/buf.rs:
crates/pfmm-sched/src/exec.rs:
crates/pfmm-sched/src/graph.rs:
