/root/repo/target/release/deps/ablation_comm-38f49b83649ac1b2.d: crates/pfmm-bench/src/bin/ablation_comm.rs

/root/repo/target/release/deps/ablation_comm-38f49b83649ac1b2: crates/pfmm-bench/src/bin/ablation_comm.rs

crates/pfmm-bench/src/bin/ablation_comm.rs:
