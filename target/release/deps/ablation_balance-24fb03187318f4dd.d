/root/repo/target/release/deps/ablation_balance-24fb03187318f4dd.d: crates/pfmm-bench/src/bin/ablation_balance.rs

/root/repo/target/release/deps/ablation_balance-24fb03187318f4dd: crates/pfmm-bench/src/bin/ablation_balance.rs

crates/pfmm-bench/src/bin/ablation_balance.rs:
