/root/repo/target/release/deps/pipeline-c3e513c3f9271bd7.d: crates/pfmm-bench/benches/pipeline.rs

/root/repo/target/release/deps/pipeline-c3e513c3f9271bd7: crates/pfmm-bench/benches/pipeline.rs

crates/pfmm-bench/benches/pipeline.rs:
