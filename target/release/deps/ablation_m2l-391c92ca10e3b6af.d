/root/repo/target/release/deps/ablation_m2l-391c92ca10e3b6af.d: crates/pfmm-bench/src/bin/ablation_m2l.rs

/root/repo/target/release/deps/ablation_m2l-391c92ca10e3b6af: crates/pfmm-bench/src/bin/ablation_m2l.rs

crates/pfmm-bench/src/bin/ablation_m2l.rs:
