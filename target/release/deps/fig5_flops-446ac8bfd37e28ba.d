/root/repo/target/release/deps/fig5_flops-446ac8bfd37e28ba.d: crates/pfmm-bench/src/bin/fig5_flops.rs

/root/repo/target/release/deps/fig5_flops-446ac8bfd37e28ba: crates/pfmm-bench/src/bin/fig5_flops.rs

crates/pfmm-bench/src/bin/fig5_flops.rs:
