/root/repo/target/release/deps/fig3_strong-8c4b814b10e4e562.d: crates/pfmm-bench/src/bin/fig3_strong.rs

/root/repo/target/release/deps/fig3_strong-8c4b814b10e4e562: crates/pfmm-bench/src/bin/fig3_strong.rs

crates/pfmm-bench/src/bin/fig3_strong.rs:
