/root/repo/target/release/deps/fig4_weak-4ac4220689c0d5b7.d: crates/pfmm-bench/src/bin/fig4_weak.rs

/root/repo/target/release/deps/fig4_weak-4ac4220689c0d5b7: crates/pfmm-bench/src/bin/fig4_weak.rs

crates/pfmm-bench/src/bin/fig4_weak.rs:
