/root/repo/target/release/deps/pfmm_bench-5921bdbd6a031fd7.d: crates/pfmm-bench/src/lib.rs

/root/repo/target/release/deps/libpfmm_bench-5921bdbd6a031fd7.rlib: crates/pfmm-bench/src/lib.rs

/root/repo/target/release/deps/libpfmm_bench-5921bdbd6a031fd7.rmeta: crates/pfmm-bench/src/lib.rs

crates/pfmm-bench/src/lib.rs:
