/root/repo/target/release/deps/pfmm_gpusim-b6e83a77a810d2e3.d: crates/pfmm-gpusim/src/lib.rs crates/pfmm-gpusim/src/device.rs crates/pfmm-gpusim/src/fmm.rs crates/pfmm-gpusim/src/kernels.rs crates/pfmm-gpusim/src/layout.rs crates/pfmm-gpusim/src/tune.rs

/root/repo/target/release/deps/libpfmm_gpusim-b6e83a77a810d2e3.rlib: crates/pfmm-gpusim/src/lib.rs crates/pfmm-gpusim/src/device.rs crates/pfmm-gpusim/src/fmm.rs crates/pfmm-gpusim/src/kernels.rs crates/pfmm-gpusim/src/layout.rs crates/pfmm-gpusim/src/tune.rs

/root/repo/target/release/deps/libpfmm_gpusim-b6e83a77a810d2e3.rmeta: crates/pfmm-gpusim/src/lib.rs crates/pfmm-gpusim/src/device.rs crates/pfmm-gpusim/src/fmm.rs crates/pfmm-gpusim/src/kernels.rs crates/pfmm-gpusim/src/layout.rs crates/pfmm-gpusim/src/tune.rs

crates/pfmm-gpusim/src/lib.rs:
crates/pfmm-gpusim/src/device.rs:
crates/pfmm-gpusim/src/fmm.rs:
crates/pfmm-gpusim/src/kernels.rs:
crates/pfmm-gpusim/src/layout.rs:
crates/pfmm-gpusim/src/tune.rs:
