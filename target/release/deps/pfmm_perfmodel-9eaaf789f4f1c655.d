/root/repo/target/release/deps/pfmm_perfmodel-9eaaf789f4f1c655.d: crates/pfmm-perfmodel/src/lib.rs

/root/repo/target/release/deps/libpfmm_perfmodel-9eaaf789f4f1c655.rlib: crates/pfmm-perfmodel/src/lib.rs

/root/repo/target/release/deps/libpfmm_perfmodel-9eaaf789f4f1c655.rmeta: crates/pfmm-perfmodel/src/lib.rs

crates/pfmm-perfmodel/src/lib.rs:
