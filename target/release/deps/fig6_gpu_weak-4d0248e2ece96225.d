/root/repo/target/release/deps/fig6_gpu_weak-4d0248e2ece96225.d: crates/pfmm-bench/src/bin/fig6_gpu_weak.rs

/root/repo/target/release/deps/fig6_gpu_weak-4d0248e2ece96225: crates/pfmm-bench/src/bin/fig6_gpu_weak.rs

crates/pfmm-bench/src/bin/fig6_gpu_weak.rs:
