/root/repo/target/release/deps/criterion-bfda7cbe35d7f76f.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-bfda7cbe35d7f76f.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-bfda7cbe35d7f76f.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
