//! Cross-crate accuracy tests: the full FMM pipeline against the exact
//! direct sum, across kernels, distributions, orders, and M2L modes.

use std::sync::Arc;

use pfmm::fmm::distrib::{ellipsoid_1_1_4, randomize_densities, uniform_cube};
use pfmm::fmm::driver::gather_potentials;
use pfmm::fmm::{Fmm, FmmConfig, M2lMode};
use pfmm::kernels::{direct_eval, Kernel, Laplace, Stokes};
use pfmm::mpisim;
use pfmm::tree::PointRec;

fn fmm_rel_error(kernel: Arc<dyn Kernel>, cfg: FmmConfig, pts: &[PointRec]) -> f64 {
    let td = kernel.target_dim();
    let sd = kernel.source_dim();
    let k2 = kernel.clone();
    let fmm = Fmm::new(kernel, cfg);
    let pts_owned = pts.to_vec();
    let gathered = mpisim::run(1, move |c| {
        let res = fmm.evaluate(c, pts_owned.clone());
        gather_potentials(c, &res, td)
    })
    .pop()
    .expect("one rank");

    let pos: Vec<[f64; 3]> = pts.iter().map(|p| p.pos).collect();
    let mut den = Vec::with_capacity(pts.len() * sd);
    for p in pts {
        den.extend_from_slice(&p.den[..sd]);
    }
    let mut want = vec![0.0; pts.len() * td];
    direct_eval(k2.as_ref(), &pos, &pos, &den, &mut want);

    let idx: std::collections::HashMap<u64, usize> =
        pts.iter().enumerate().map(|(i, p)| (p.gid, i)).collect();
    let mut num = 0.0f64;
    let mut dnm = 0.0f64;
    assert_eq!(gathered.len(), pts.len());
    for (gid, got) in gathered {
        let i = idx[&gid];
        for t in 0..td {
            num += (got[t] - want[i * td + t]).powi(2);
            dnm += want[i * td + t].powi(2);
        }
    }
    (num / dnm).sqrt()
}

#[test]
fn laplace_error_decreases_with_order() {
    let mut pts = uniform_cube(2500, 101, 0);
    randomize_densities(&mut pts, 1, 5);
    let mut errs = Vec::new();
    for order in [2usize, 4, 6] {
        let cfg = FmmConfig {
            order,
            q: 40,
            ..Default::default()
        };
        errs.push(fmm_rel_error(Arc::new(Laplace), cfg, &pts));
    }
    assert!(errs[0] < 0.2, "order 2 is crude but bounded: {errs:?}");
    assert!(errs[1] < 1e-3, "order 4 gives ~3 digits: {errs:?}");
    assert!(errs[2] < 1e-5, "order 6 gives ~5 digits: {errs:?}");
    assert!(
        errs[2] < errs[1] && errs[1] < errs[0],
        "monotone convergence: {errs:?}"
    );
}

#[test]
fn laplace_nonuniform_tree_accuracy() {
    let mut pts = ellipsoid_1_1_4(2000, 103, 0);
    randomize_densities(&mut pts, 1, 7);
    let cfg = FmmConfig {
        order: 6,
        q: 30,
        ..Default::default()
    };
    let err = fmm_rel_error(Arc::new(Laplace), cfg, &pts);
    assert!(err < 1e-4, "deep adaptive tree error {err}");
}

#[test]
fn stokes_vector_kernel_accuracy() {
    let mut pts = uniform_cube(1200, 107, 0);
    randomize_densities(&mut pts, 3, 9);
    let cfg = FmmConfig {
        order: 6,
        q: 60,
        ..Default::default()
    };
    let err = fmm_rel_error(Arc::new(Stokes { mu: 0.8 }), cfg, &pts);
    assert!(err < 1e-4, "stokes error {err}");
}

#[test]
fn dense_and_fft_m2l_agree_on_mixed_tree() {
    let mut pts = ellipsoid_1_1_4(1500, 109, 0);
    randomize_densities(&mut pts, 1, 11);
    let dense = fmm_rel_error(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 25,
            m2l: M2lMode::Dense,
            ..Default::default()
        },
        &pts,
    );
    let fft = fmm_rel_error(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 25,
            m2l: M2lMode::Fft,
            ..Default::default()
        },
        &pts,
    );
    assert!(
        (dense - fft).abs() < 1e-6,
        "same operator, same error: {dense} vs {fft}"
    );
}

#[test]
fn clustered_plus_background_distribution() {
    // A stress mix: half the points in a tight cluster, half uniform —
    // exercises U/V/W/X all at once with large level differences.
    let mut pts = uniform_cube(800, 113, 0);
    let cluster = uniform_cube(800, 127, 800);
    for (i, c) in cluster.iter().enumerate() {
        let mut p = *c;
        p.pos = [
            0.4 + 0.01 * c.pos[0],
            0.4 + 0.01 * c.pos[1],
            0.4 + 0.01 * c.pos[2],
        ];
        p.gid = 800 + i as u64;
        pts.push(p);
    }
    randomize_densities(&mut pts, 1, 13);
    let cfg = FmmConfig {
        order: 6,
        q: 20,
        ..Default::default()
    };
    let err = fmm_rel_error(Arc::new(Laplace), cfg, &pts);
    assert!(err < 1e-4, "cluster+background error {err}");
}

#[test]
fn tiny_problems_are_exact() {
    // Everything fits in the root leaf: the FMM must reduce to the
    // direct sum with zero approximation error.
    for n in [2usize, 7, 30] {
        let mut pts = uniform_cube(n, 131 + n as u64, 0);
        randomize_densities(&mut pts, 1, 17);
        let cfg = FmmConfig {
            order: 4,
            q: 64,
            ..Default::default()
        };
        let err = fmm_rel_error(Arc::new(Laplace), cfg, &pts);
        assert!(err < 1e-12, "n={n}: {err}");
    }
    // A single point has zero potential (self-interaction excluded); the
    // error metric degenerates, so check the value directly.
    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 64,
            ..Default::default()
        },
    );
    let lone = vec![PointRec::scalar([0.5, 0.5, 0.5], 3.0, 0)];
    let out = mpisim::run(1, |c| {
        let res = fmm.evaluate(c, lone.clone());
        gather_potentials(c, &res, 1)
    })
    .pop()
    .expect("one rank");
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].1[0], 0.0, "lone charge sees no potential");
}

#[test]
fn yukawa_non_homogeneous_kernel_accuracy() {
    // Yukawa is not homogeneous, so every translation operator is built
    // per level — the production path homogeneous kernels skip.
    use pfmm::kernels::Yukawa;
    let mut pts = uniform_cube(1500, 137, 0);
    randomize_densities(&mut pts, 1, 19);
    let cfg = FmmConfig {
        order: 6,
        q: 50,
        ..Default::default()
    };
    let err = fmm_rel_error(Arc::new(Yukawa { lambda: 3.0 }), cfg, &pts);
    assert!(err < 1e-4, "yukawa error {err}");
}

#[test]
fn yukawa_matches_laplace_at_zero_screening() {
    use pfmm::kernels::Yukawa;
    let mut pts = uniform_cube(900, 139, 0);
    randomize_densities(&mut pts, 1, 23);
    let cfg = FmmConfig {
        order: 4,
        q: 40,
        ..Default::default()
    };
    let e_yuk = fmm_rel_error(Arc::new(Yukawa { lambda: 0.0 }), cfg, &pts);
    let e_lap = fmm_rel_error(Arc::new(Laplace), cfg, &pts);
    assert!(
        (e_yuk - e_lap).abs() < 1e-6,
        "λ=0 Yukawa is Laplace: {e_yuk} vs {e_lap}"
    );
}

#[test]
fn dipole_rectangular_kernel_accuracy() {
    // source_dim = 3, target_dim = 1 and homogeneity −2: the rectangular
    // operator shapes and the non-unit scaling exponent.
    use pfmm::kernels::LaplaceDipole;
    let mut pts = uniform_cube(1200, 149, 0);
    randomize_densities(&mut pts, 3, 21);
    let cfg = FmmConfig {
        order: 6,
        q: 50,
        ..Default::default()
    };
    let err = fmm_rel_error(Arc::new(LaplaceDipole), cfg, &pts);
    assert!(err < 1e-3, "dipole error {err}");
}
