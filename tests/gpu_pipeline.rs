//! Cross-crate GPU-simulation tests: the single-precision streaming
//! pipeline against the f64 CPU FMM, and the §IV performance structure.

use pfmm::fmm::distrib::{ellipsoid_1_1_4, randomize_densities, uniform_cube};
use pfmm::gpusim::{run_gpu_fmm, DeviceSpec};

#[test]
fn gpu_pipeline_accuracy_uniform() {
    let mut pts = uniform_cube(2000, 301, 0);
    randomize_densities(&mut pts, 1, 3);
    let rep = run_gpu_fmm(pts, 60, 4, &DeviceSpec::tesla_s1070(), true);
    assert!(
        rep.rel_err_vs_f64 < 5e-4,
        "f32 vs f64: {}",
        rep.rel_err_vs_f64
    );
}

#[test]
fn gpu_pipeline_accuracy_nonuniform() {
    // The adaptive tree exercises the CPU-resident W/X phases of the GPU
    // split as well.
    let mut pts = ellipsoid_1_1_4(1500, 307, 0);
    randomize_densities(&mut pts, 1, 5);
    let rep = run_gpu_fmm(pts, 30, 4, &DeviceSpec::tesla_s1070(), true);
    // 2e-3 matches the W/X-on-GPU test below: the adaptive ellipsoid at
    // q=30 sits right at the f32 pipeline's accuracy floor, so the bound
    // cannot be tighter without becoming sensitive to the RNG stream.
    assert!(
        rep.rel_err_vs_f64 < 2e-3,
        "f32 vs f64 (adaptive): {}",
        rep.rel_err_vs_f64
    );
    assert!(
        rep.gpu_secs[3] > 0.0,
        "W/X phase actually ran on the adaptive tree"
    );
}

#[test]
fn phase_structure_matches_paper() {
    let mut pts = uniform_cube(30_000, 311, 0);
    randomize_densities(&mut pts, 1, 7);
    let dev = DeviceSpec::tesla_s1070();
    let rep = run_gpu_fmm(pts, 100, 4, &dev, false);
    // Every modeled phase positive, totals consistent.
    for (g, c) in rep.gpu_secs.iter().zip(&rep.cpu2009_secs) {
        assert!(*g >= 0.0 && *c >= 0.0);
    }
    assert!(rep.total_gpu() < rep.total_cpu2009(), "acceleration helps");
    // U-list speedup is the largest (compute-bound phase) — the paper's
    // central GPU observation.
    let uli_speedup = rep.cpu2009_secs[1] / rep.gpu_secs[1].max(1e-12);
    let vli_speedup = rep.cpu2009_secs[2] / rep.gpu_secs[2].max(1e-12);
    assert!(
        uli_speedup > vli_speedup,
        "compute-bound U-list gains more than bandwidth-bound V-list: {uli_speedup} vs {vli_speedup}"
    );
}

#[test]
fn translation_and_transfer_are_minor() {
    let mut pts = uniform_cube(20_000, 313, 0);
    randomize_densities(&mut pts, 1, 9);
    let rep = run_gpu_fmm(pts, 150, 4, &DeviceSpec::tesla_s1070(), false);
    assert!(
        rep.translate_secs < 0.5 * rep.total_cpu2009(),
        "layout translation minor: {} vs {}",
        rep.translate_secs,
        rep.total_cpu2009()
    );
    assert!(rep.transfer_secs < rep.total_cpu2009());
}

#[test]
fn device_parameters_affect_model_sensibly() {
    let mut pts = uniform_cube(8_000, 317, 0);
    randomize_densities(&mut pts, 1, 11);
    let base = DeviceSpec::tesla_s1070();
    let mut slow = base;
    slow.flops_per_sec /= 10.0;
    let fast = run_gpu_fmm(pts.clone(), 200, 4, &base, false);
    let slowed = run_gpu_fmm(pts, 200, 4, &slow, false);
    // The compute-bound U-list must slow ~10x; bandwidth-bound phases
    // change less.
    let ratio = slowed.gpu_secs[1] / fast.gpu_secs[1];
    assert!(ratio > 5.0, "U-list tracks the flop rate: {ratio}");
}

#[test]
fn wx_on_gpu_matches_host_wx() {
    // The paper's stated future work ("transferring the W,X-lists on the
    // GPU"): the device path must agree with the host path and with the
    // f64 reference on an adaptive tree where W/X carry real work.
    use pfmm::gpusim::run_gpu_fmm_wx;
    let mut pts = ellipsoid_1_1_4(1500, 331, 0);
    randomize_densities(&mut pts, 1, 13);
    let dev = DeviceSpec::tesla_s1070();
    let host = run_gpu_fmm(pts.clone(), 30, 4, &dev, true);
    let device = run_gpu_fmm_wx(pts, 30, 4, &dev, true);
    assert!(
        host.gpu_secs[3] > 0.0 && device.gpu_secs[3] > 0.0,
        "W/X ran in both"
    );
    assert!(
        device.rel_err_vs_f64 < 2e-3,
        "GPU W/X accuracy: {}",
        device.rel_err_vs_f64
    );
    // The device path streams block-padded source tiles, so its flop
    // tally is inflated by the padding factor (~4x at q=30 with b=64) —
    // the same coalescing/padding trade the U-list makes.
    let ratio = device.cpu2009_secs[3] / host.cpu2009_secs[3];
    assert!(
        (1.0..10.0).contains(&ratio),
        "padded W/X work factor: {ratio}"
    );
}

#[test]
fn distributed_gpu_pipeline_accuracy() {
    // The full heterogeneous configuration of the paper: p ranks, one
    // simulated device each, real LET exchange and a real hypercube
    // reduce-and-scatter between the device phases.
    use pfmm::gpusim::run_gpu_fmm_distributed;
    let mut pts = uniform_cube(3000, 401, 0);
    randomize_densities(&mut pts, 1, 7);
    let dev = DeviceSpec::tesla_s1070();
    let reports = run_gpu_fmm_distributed(4, pts, 60, 4, &dev, true);
    assert_eq!(reports.len(), 4);
    let err = reports[0].rel_err_vs_f64;
    assert!(err < 1e-3, "distributed f32 pipeline vs f64: {err}");
    let total_pts: usize = reports.iter().map(|r| r.n).sum();
    assert_eq!(total_pts, 3000);
    for r in &reports {
        assert!(
            r.comm_wall_secs > 0.0,
            "the reduce-and-scatter actually ran"
        );
        assert!(r.total_gpu() > 0.0);
    }
}
