//! Cross-crate observability tests: the trace recorded around a real
//! distributed evaluation must be well-formed Chrome JSON, must carry
//! the cross-rank flow arrows that make the hypercube rounds visible,
//! must agree *exactly* with the mpisim traffic counters, and — the
//! invariant everything else leans on — must not perturb the numerics:
//! barrier and graph schedules stay bitwise identical at every trace
//! level.

use std::sync::Arc;

use pfmm::fmm::distrib::{randomize_densities, uniform_cube};
use pfmm::fmm::driver::gather_potentials;
use pfmm::fmm::{Fmm, FmmConfig, Reduction, Schedule};
use pfmm::kernels::Laplace;
use pfmm::mpisim::{self, CommMatrix, CommStats};
use pfmm::trace::{chrome, metrics, Event, TraceLevel, Tracer};
use pfmm::tree::PointRec;

const P: usize = 4;

fn cloud(n: usize) -> Vec<PointRec> {
    let mut pts = uniform_cube(n, 7, 0);
    randomize_densities(&mut pts, 1, 9);
    pts
}

fn cfg(schedule: Schedule) -> FmmConfig {
    FmmConfig {
        order: 4,
        q: 40,
        threads: 2,
        schedule,
        reduction: Reduction::Hypercube,
        ..Default::default()
    }
}

type Potentials = Vec<(u64, Vec<f64>)>;

/// Run traced on `P` ranks; returns per-rank (potentials, comm stats)
/// plus the drained, time-sorted event stream.
fn run_traced(
    fmm: &Fmm,
    pts: &[PointRec],
    tracer: &Arc<Tracer>,
) -> (Vec<(Potentials, CommStats)>, Vec<Event>) {
    let out = mpisim::run(P, |c| {
        let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(P).copied().collect();
        let res = fmm.evaluate_traced(c, mine, tracer);
        (gather_potentials(c, &res, 1), c.stats())
    });
    let events = tracer.drain();
    (out, events)
}

#[test]
fn comm_trace_carries_flow_arrows_for_every_hypercube_round() {
    let fmm = Fmm::new(Arc::new(Laplace), cfg(Schedule::Graph));
    let pts = cloud(1600);
    let tracer = Arc::new(Tracer::new(TraceLevel::Comm));
    let (_, events) = run_traced(&fmm, &pts, &tracer);

    let stats = chrome::validate(&events).expect("trace is well-formed");
    assert!(stats.spans > 0, "spans recorded");
    // The hypercube reduce-and-scatter runs log2(p) rounds on every
    // rank, each shipping at least one message whose send/recv pair is
    // linked by a flow arrow — that's what renders the butterfly in
    // Perfetto. p = 4 gives 2 rounds x 4 ranks as the floor; the LET
    // exchange and the final gather only add more.
    let rounds = P.ilog2() as usize;
    assert!(
        stats.flows >= P * rounds,
        "expected >= {} matched flow arrows (one per rank per round), got {}",
        P * rounds,
        stats.flows
    );

    // Exact JSON round-trip: export, parse back, same validation result.
    let json = chrome::to_json_string(&events);
    let back = chrome::parse(&json).expect("exported JSON parses");
    assert_eq!(
        chrome::validate(&back).expect("round-tripped trace validates"),
        stats
    );
}

#[test]
fn trace_derived_comm_matrix_matches_mpisim_counters_exactly() {
    let fmm = Fmm::new(Arc::new(Laplace), cfg(Schedule::Graph));
    let pts = cloud(1600);
    let tracer = Arc::new(Tracer::new(TraceLevel::Comm));
    let (out, events) = run_traced(&fmm, &pts, &tracer);

    let per_rank: Vec<CommStats> = out.iter().map(|(_, s)| s.clone()).collect();
    for (r, s) in per_rank.iter().enumerate() {
        s.check_consistent()
            .unwrap_or_else(|e| panic!("rank {r} stats inconsistent: {e}"));
    }
    let counted = CommMatrix::from_stats(&per_rank);
    let traced = metrics::comm_matrix(&events);
    assert_eq!(traced.p, P);
    assert_eq!(counted.p, P);
    // Cell-for-cell: every message the runtime counted produced exactly
    // one `send` instant with the same byte payload, so the matrix
    // recovered from the trace is *equal* to the one summed from the
    // counters — not approximately, exactly.
    assert_eq!(traced.msgs, counted.msgs, "per-(src,dst) message counts");
    assert_eq!(traced.bytes, counted.bytes, "per-(src,dst) byte counts");
    let sent_total: u64 = per_rank.iter().map(|s| s.sent_bytes).sum();
    assert_eq!(counted.total_bytes(), sent_total);
}

#[test]
fn schedules_stay_bitwise_identical_at_every_trace_level() {
    let pts = cloud(1200);
    let baseline = {
        let fmm = Fmm::new(Arc::new(Laplace), cfg(Schedule::Barrier));
        mpisim::run(P, |c| {
            let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(P).copied().collect();
            gather_potentials(c, &fmm.evaluate(c, mine), 1)
        })[0]
            .clone()
    };
    for level in [
        TraceLevel::Off,
        TraceLevel::Phase,
        TraceLevel::Task,
        TraceLevel::Comm,
    ] {
        for schedule in [Schedule::Barrier, Schedule::Graph] {
            let fmm = Fmm::new(Arc::new(Laplace), cfg(schedule));
            let tracer = Arc::new(Tracer::new(level));
            let (out, _) = run_traced(&fmm, &pts, &tracer);
            // Bitwise, not approximate: tracing wraps the phase closures
            // from the outside and must never reorder a flop.
            assert_eq!(
                out[0].0, baseline,
                "{schedule:?} at {level:?} diverged from the untraced barrier run"
            );
        }
    }
}

#[test]
fn profile_overlap_matches_span_derived_comm_compute_intersection() {
    let fmm = Fmm::new(Arc::new(Laplace), cfg(Schedule::Graph));
    let pts = cloud(2000);
    let tracer = Arc::new(Tracer::new(TraceLevel::Comm));
    let out = mpisim::run(P, |c| {
        let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(P).copied().collect();
        fmm.evaluate_traced(c, mine, &tracer).profile.clone()
    });
    let events = tracer.drain();
    for (rank, prof) in out.iter().enumerate() {
        // Same merge-then-intersect computed two independent ways: the
        // graph executor's interval accounting (Profile::overlap_secs)
        // and the metrics module working from the recorded spans.
        let from_spans = metrics::overlap_secs(&events, rank as u32);
        assert!(
            (prof.overlap_secs - from_spans).abs() < 1e-9,
            "rank {rank}: profile overlap {} vs span-derived {}",
            prof.overlap_secs,
            from_spans
        );
    }
}

#[test]
fn off_tracer_records_nothing() {
    let fmm = Fmm::new(Arc::new(Laplace), cfg(Schedule::Graph));
    let pts = cloud(800);
    let tracer = Arc::new(Tracer::off());
    let (out, events) = run_traced(&fmm, &pts, &tracer);
    assert!(events.is_empty(), "off tracer must record zero events");
    assert_eq!(out[0].0.len(), 800, "evaluation itself still ran");
}
