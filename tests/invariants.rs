//! Property-based invariants across the tree and FMM pipeline, on
//! randomized point clouds (proptest drives the randomness).

use proptest::prelude::*;
use std::sync::Arc;

use pfmm::fmm::driver::gather_potentials;
use pfmm::fmm::{Fmm, FmmConfig};
use pfmm::kernels::{direct_eval, Laplace};
use pfmm::morton::{is_complete_linear, MortonKey};
use pfmm::mpisim;
use pfmm::tree::{build_let, build_lists, points_to_octree, PointRec};

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<PointRec>> {
    prop::collection::vec(
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, -1.0f64..1.0),
        1..max_n,
    )
    .prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (x, y, z, d))| PointRec::scalar([x, y, z], d, i as u64))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The global leaf set is always a complete linear octree and every
    /// point lands in exactly one leaf that contains it.
    #[test]
    fn tree_complete_and_points_contained(pts in arb_points(300), q in 1usize..20) {
        let n = pts.len();
        let trees = mpisim::run(1, |c| points_to_octree(c, pts.clone(), q));
        let t = &trees[0];
        prop_assert!(is_complete_linear(&t.leaves));
        let mut total = 0;
        for i in 0..t.num_leaves() {
            for p in t.leaf_points(i) {
                prop_assert!(t.leaves[i].contains_point(&p.pos));
                total += 1;
            }
        }
        prop_assert_eq!(total, n);
    }

    /// List symmetries of Table I hold on arbitrary adaptive trees:
    /// U and V are symmetric, W and X are mutual duals.
    #[test]
    fn list_symmetries(pts in arb_points(200), q in 1usize..8) {
        let l = mpisim::run(1, |c| build_let(c, &points_to_octree(c, pts.clone(), q)))
            .pop().expect("one rank");
        let lists = build_lists(&l);
        for bi in 0..l.len() {
            for &ai in lists.u.row(bi) {
                prop_assert!(lists.u.row(ai as usize).contains(&(bi as u32)));
            }
            for &ai in lists.v.row(bi) {
                prop_assert!(lists.v.row(ai as usize).contains(&(bi as u32)));
            }
            for &ai in lists.w.row(bi) {
                prop_assert!(lists.x.row(ai as usize).contains(&(bi as u32)));
            }
            for &ai in lists.x.row(bi) {
                prop_assert!(lists.w.row(ai as usize).contains(&(bi as u32)));
            }
        }
    }

    /// Morton-key algebra: parent/child, ancestor ordering, and the
    /// rank-interval nesting that the whole pipeline relies on.
    #[test]
    fn morton_key_algebra(
        x in 0.0f64..1.0, y in 0.0f64..1.0, z in 0.0f64..1.0,
        level in 1u32..12,
    ) {
        let k = MortonKey::from_point(&[x, y, z], level);
        let parent = k.parent().expect("level >= 1");
        prop_assert!(parent.is_ancestor_of(&k));
        prop_assert!(parent < k);
        prop_assert!(parent.rank() <= k.rank());
        prop_assert!(k.rank_end() <= parent.rank_end());
        prop_assert_eq!(parent.child(k.child_index()), k);
        // Colleague relation is symmetric and same-level.
        for c in k.colleagues() {
            prop_assert_eq!(c.level(), k.level());
            prop_assert!(c.colleagues().contains(&k));
        }
    }

    /// End-to-end linearity: FMM(αs) == α·FMM(s) to rounding — the whole
    /// pipeline is a linear operator in the densities.
    #[test]
    fn fmm_is_linear_in_densities(pts in arb_points(150), alpha in 0.25f64..4.0) {
        let cfg = FmmConfig { order: 4, q: 10, ..Default::default() };
        let fmm = Fmm::new(Arc::new(Laplace), cfg);
        let eval = |pts: Vec<PointRec>| -> std::collections::HashMap<u64, f64> {
            let f = &fmm;
            mpisim::run(1, move |c| {
                let res = f.evaluate(c, pts.clone());
                gather_potentials(c, &res, 1)
            })
            .pop()
            .expect("one rank")
            .into_iter()
            .map(|(g, v)| (g, v[0]))
            .collect()
        };
        let base = eval(pts.clone());
        let mut scaled_pts = pts.clone();
        for p in &mut scaled_pts {
            p.den[0] *= alpha;
        }
        let scaled = eval(scaled_pts);
        for (gid, v) in &scaled {
            let want = alpha * base[gid];
            prop_assert!(
                (v - want).abs() <= 1e-9 * want.abs().max(1.0),
                "gid {}: {} vs {}", gid, v, want
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Distributed evaluation equals sequential at truncation accuracy
    /// for random clouds, rank counts, and points-per-box bounds.
    #[test]
    fn distributed_equals_sequential(
        pts in arb_points(250),
        p in 1usize..5,
        q in 2usize..24,
    ) {
        let cfg = FmmConfig { order: 4, q, ..Default::default() };
        let fmm = Fmm::new(Arc::new(Laplace), cfg);
        let eval_at = |ranks: usize| -> std::collections::HashMap<u64, f64> {
            let f = &fmm;
            let pts = &pts;
            mpisim::run(ranks, move |c| {
                let mine: Vec<_> =
                    pts.iter().skip(c.rank()).step_by(ranks).copied().collect();
                let res = f.evaluate(c, mine);
                gather_potentials(c, &res, 1)
            })
            .pop()
            .expect("rank 0")
            .into_iter()
            .map(|(g, v)| (g, v[0]))
            .collect()
        };
        let seq = eval_at(1);
        let par = eval_at(p);
        prop_assert_eq!(seq.len(), par.len());
        for (gid, v) in &par {
            let w = seq[gid];
            prop_assert!(
                (v - w).abs() <= 5e-3 * w.abs().max(1.0),
                "gid {}: {} vs {}", gid, v, w
            );
        }
    }
}

/// The barrier and graph executors are not merely close — they must be
/// bitwise identical, because they run the same chunk kernels in the
/// same per-slice accumulation order. Adaptive (ellipsoid) distribution,
/// 4 simulated ranks, worker threads on.
#[test]
fn graph_and_barrier_schedules_bitwise_identical() {
    use pfmm::fmm::distrib::{ellipsoid_1_1_4, randomize_densities};
    use pfmm::fmm::Schedule;

    let mut pts = ellipsoid_1_1_4(2000, 41, 0);
    randomize_densities(&mut pts, 1, 43);
    let eval = |schedule: Schedule| -> std::collections::HashMap<u64, Vec<f64>> {
        let cfg = FmmConfig {
            order: 4,
            q: 30,
            threads: 2,
            schedule,
            ..Default::default()
        };
        let fmm = Fmm::new(Arc::new(Laplace), cfg);
        let pts = &pts;
        mpisim::run(4, move |c| {
            let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(4).copied().collect();
            let res = fmm.evaluate(c, mine);
            gather_potentials(c, &res, 1)
        })
        .pop()
        .expect("rank outputs")
        .into_iter()
        .collect()
    };
    let barrier = eval(Schedule::Barrier);
    let graph = eval(Schedule::Graph);
    assert_eq!(barrier.len(), pts.len());
    assert_eq!(graph.len(), barrier.len());
    for (gid, pot) in &graph {
        for (a, w) in pot.iter().zip(&barrier[gid]) {
            assert_eq!(
                a.to_bits(),
                w.to_bits(),
                "gid {gid}: graph {a} vs barrier {w}"
            );
        }
    }
}

/// Deterministic spot-check kept outside proptest: the direct sum and
/// the FMM agree on a fixed cloud (guards the test harness itself).
#[test]
fn harness_sanity() {
    let pts: Vec<PointRec> = (0..64)
        .map(|i| {
            let f = i as f64 / 64.0;
            PointRec::scalar([f, (3.0 * f) % 1.0, (7.0 * f) % 1.0], 1.0, i as u64)
        })
        .collect();
    let cfg = FmmConfig {
        order: 6,
        q: 8,
        ..Default::default()
    };
    let fmm = Fmm::new(Arc::new(Laplace), cfg);
    let got = mpisim::run(1, |c| {
        let res = fmm.evaluate(c, pts.clone());
        gather_potentials(c, &res, 1)
    })
    .pop()
    .expect("one rank");
    let pos: Vec<[f64; 3]> = pts.iter().map(|p| p.pos).collect();
    let den: Vec<f64> = vec![1.0; 64];
    let mut want = vec![0.0; 64];
    direct_eval(&Laplace, &pos, &pos, &den, &mut want);
    for (gid, v) in got {
        assert!((v[0] - want[gid as usize]).abs() < 1e-5 * want[gid as usize].abs().max(1.0));
    }
}
