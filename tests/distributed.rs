//! Cross-crate distributed-execution tests: any rank count must produce
//! the sequential answer (at truncation accuracy — region boundaries
//! refine the tree differently), conserve all points, and exercise the
//! communication machinery the paper introduces.

use std::sync::Arc;

use pfmm::fmm::distrib::{ellipsoid_1_1_4, randomize_densities, uniform_cube};
use pfmm::fmm::driver::gather_potentials;
use pfmm::fmm::{Fmm, FmmConfig, Reduction};
use pfmm::kernels::{Laplace, Stokes};
use pfmm::mpisim;
use pfmm::tree::PointRec;

type RunOutput = (Vec<(u64, Vec<f64>)>, Vec<u64>, Vec<u64>);

fn run_p(fmm: &Fmm, pts: &[PointRec], p: usize, td: usize) -> RunOutput {
    let out = mpisim::run(p, |c| {
        let mine: Vec<_> = pts.iter().skip(c.rank()).step_by(p).copied().collect();
        let res = fmm.evaluate(c, mine);
        (
            gather_potentials(c, &res, td),
            res.comm_reduce.sent_msgs,
            res.comm_reduce.sent_bytes,
        )
    });
    let gathered = out[0].0.clone();
    let msgs = out.iter().map(|(_, m, _)| *m).collect();
    let bytes = out.iter().map(|(_, _, b)| *b).collect();
    (gathered, msgs, bytes)
}

fn assert_matches_reference(
    reference: &std::collections::HashMap<u64, Vec<f64>>,
    got: &[(u64, Vec<f64>)],
    tol: f64,
    label: &str,
) {
    assert_eq!(got.len(), reference.len(), "{label}: point count");
    for (gid, v) in got {
        let want = &reference[gid];
        for (a, b) in v.iter().zip(want) {
            assert!(
                (a - b).abs() < tol * b.abs().max(1.0),
                "{label} gid {gid}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn all_rank_counts_agree_laplace() {
    let mut pts = uniform_cube(2400, 211, 0);
    randomize_densities(&mut pts, 1, 3);
    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 40,
            ..Default::default()
        },
    );
    let seq: std::collections::HashMap<u64, Vec<f64>> =
        run_p(&fmm, &pts, 1, 1).0.into_iter().collect();
    for p in [2usize, 3, 4, 5, 8] {
        let (got, _, _) = run_p(&fmm, &pts, p, 1);
        assert_matches_reference(&seq, &got, 5e-3, &format!("p={p}"));
    }
}

#[test]
fn nonuniform_stokes_distributed() {
    let mut pts = ellipsoid_1_1_4(1600, 223, 0);
    randomize_densities(&mut pts, 3, 5);
    let fmm = Fmm::new(
        Arc::new(Stokes::default()),
        FmmConfig {
            order: 4,
            q: 40,
            ..Default::default()
        },
    );
    let seq: std::collections::HashMap<u64, Vec<f64>> =
        run_p(&fmm, &pts, 1, 3).0.into_iter().collect();
    let (got, msgs, _) = run_p(&fmm, &pts, 4, 3);
    // Order-4 Stokes truncation is ~5e-3 l2; the worst pointwise
    // deviation between the differently-refined trees sits near 1%.
    assert_matches_reference(&seq, &got, 3e-2, "stokes p=4");
    assert!(
        msgs.iter().all(|&m| m > 0),
        "every rank communicated: {msgs:?}"
    );
}

#[test]
fn hypercube_and_naive_reductions_agree_exactly() {
    // Same tree, same partial sums — only the communication schedule
    // differs, so results must agree to rounding.
    let mut pts = uniform_cube(2000, 227, 0);
    randomize_densities(&mut pts, 1, 7);
    let mk = |reduction| {
        Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 30,
                reduction,
                ..Default::default()
            },
        )
    };
    let hc: std::collections::HashMap<u64, Vec<f64>> = run_p(&mk(Reduction::Hypercube), &pts, 8, 1)
        .0
        .into_iter()
        .collect();
    let (nv, _, _) = run_p(&mk(Reduction::Naive), &pts, 8, 1);
    assert_matches_reference(&hc, &nv, 1e-11, "naive vs hypercube");
}

#[test]
fn hypercube_message_count_is_logarithmic() {
    let mut pts = uniform_cube(3200, 229, 0);
    randomize_densities(&mut pts, 1, 9);
    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 40,
            ..Default::default()
        },
    );
    for p in [2usize, 4, 8, 16] {
        let (_, msgs, _) = run_p(&fmm, &pts, p, 1);
        let expect = 2 * (p.trailing_zeros() as u64); // keys+densities per round
        assert!(
            msgs.iter().all(|&m| m == expect),
            "p={p}: per-rank messages {msgs:?}, expected {expect}"
        );
    }
}

#[test]
fn skewed_initial_distribution_is_rebalanced() {
    // All input points start on rank 0; the pipeline must still spread
    // the evaluation.
    let mut pts = uniform_cube(3000, 233, 0);
    randomize_densities(&mut pts, 1, 11);
    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 40,
            ..Default::default()
        },
    );
    let out = mpisim::run(4, |c| {
        let mine = if c.rank() == 0 {
            pts.clone()
        } else {
            Vec::new()
        };
        let res = fmm.evaluate(c, mine);
        (res.gids.len(), res.profile.total_flops())
    });
    let counts: Vec<usize> = out.iter().map(|(n, _)| *n).collect();
    assert_eq!(counts.iter().sum::<usize>(), 3000);
    assert!(
        counts.iter().all(|&n| n > 300),
        "points spread across ranks: {counts:?}"
    );
    let flops: Vec<u64> = out.iter().map(|(_, f)| *f).collect();
    let max = *flops.iter().max().expect("ranks") as f64;
    let min = *flops.iter().min().expect("ranks") as f64;
    assert!(max / min.max(1.0) < 3.0, "work roughly balanced: {flops:?}");
}

#[test]
fn repeated_evaluation_reuses_operator_cache() {
    // Second evaluation on the same Fmm must be no less accurate and the
    // operator cache must not corrupt across runs.
    let mut pts = uniform_cube(1000, 239, 0);
    randomize_densities(&mut pts, 1, 13);
    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 30,
            ..Default::default()
        },
    );
    let a: std::collections::HashMap<u64, Vec<f64>> =
        run_p(&fmm, &pts, 2, 1).0.into_iter().collect();
    let (b, _, _) = run_p(&fmm, &pts, 2, 1);
    assert_matches_reference(&a, &b, 1e-14, "identical reruns");
}

#[test]
fn threaded_evaluation_matches_sequential() {
    // Intra-rank threading (the §IV parallel phase set) must be
    // bitwise-identical in structure: same tree, same operators, only the
    // loop scheduling differs; results agree to rounding.
    let mut pts = pfmm::fmm::distrib::ellipsoid_1_1_4(2000, 241, 0);
    pfmm::fmm::distrib::randomize_densities(&mut pts, 1, 15);
    let mk = |threads| {
        Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 25,
                threads,
                ..Default::default()
            },
        )
    };
    let seq: std::collections::HashMap<u64, Vec<f64>> =
        run_p(&mk(1), &pts, 1, 1).0.into_iter().collect();
    for threads in [2usize, 4] {
        let (par, _, _) = run_p(&mk(threads), &pts, 1, 1);
        assert_matches_reference(&seq, &par, 1e-12, &format!("threads={threads}"));
    }
    // Threading composes with distributed ranks.
    let (both, _, _) = run_p(&mk(3), &pts, 2, 1);
    let seq2: std::collections::HashMap<u64, Vec<f64>> =
        run_p(&mk(1), &pts, 2, 1).0.into_iter().collect();
    assert_matches_reference(&seq2, &both, 1e-12, "threads=3 p=2");
}

#[test]
fn bitonic_sort_backend_matches_sample() {
    use pfmm::fmm::SortKind;
    let mut pts = uniform_cube(1600, 251, 0);
    randomize_densities(&mut pts, 1, 17);
    let mk = |sort| {
        Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 30,
                sort,
                ..Default::default()
            },
        )
    };
    // Same points, p = 4 (power of two): both backends must produce the
    // same global Morton distribution, hence identical trees and results.
    let sample: std::collections::HashMap<u64, Vec<f64>> = run_p(&mk(SortKind::Sample), &pts, 4, 1)
        .0
        .into_iter()
        .collect();
    let (bitonic, _, _) = run_p(&mk(SortKind::Bitonic), &pts, 4, 1);
    // Region fences may differ (different chunk boundaries), so agreement
    // holds at truncation accuracy.
    assert_matches_reference(&sample, &bitonic, 5e-3, "bitonic backend");
    // Non-power-of-two falls back to sample sort: exact match.
    let s3: std::collections::HashMap<u64, Vec<f64>> = run_p(&mk(SortKind::Sample), &pts, 3, 1)
        .0
        .into_iter()
        .collect();
    let (b3, _, _) = run_p(&mk(SortKind::Bitonic), &pts, 3, 1);
    assert_matches_reference(&s3, &b3, 1e-12, "bitonic fallback");
}

#[test]
fn parallel_traversals_match_sequential() {
    // The Euler-tour future work: level-synchronous parallel U2U/D2D
    // must reproduce the sequential traversals to rounding (same
    // operators, different evaluation order of independent updates).
    let mut pts = pfmm::fmm::distrib::ellipsoid_1_1_4(1800, 257, 0);
    pfmm::fmm::distrib::randomize_densities(&mut pts, 1, 19);
    let mk = |traversal_threads| {
        Fmm::new(
            Arc::new(Laplace),
            FmmConfig {
                order: 4,
                q: 20,
                traversal_threads,
                ..Default::default()
            },
        )
    };
    let seq: std::collections::HashMap<u64, Vec<f64>> =
        run_p(&mk(1), &pts, 1, 1).0.into_iter().collect();
    let (par, _, _) = run_p(&mk(4), &pts, 1, 1);
    assert_matches_reference(&seq, &par, 1e-11, "traversal_threads=4");
    let (par2, _, _) = run_p(&mk(2), &pts, 2, 1);
    let seq2: std::collections::HashMap<u64, Vec<f64>> =
        run_p(&mk(1), &pts, 2, 1).0.into_iter().collect();
    assert_matches_reference(&seq2, &par2, 1e-11, "traversal_threads=2 p=2");
}
