//! Failure injection: the library must fail loudly and precisely on
//! misuse, not corrupt results. Every contract documented with a
//! `# Panics` section gets exercised here.

use std::sync::Arc;

use pfmm::fmm::{Fmm, FmmConfig};
use pfmm::kernels::Laplace;
use pfmm::linalg::Matrix;
use pfmm::morton::{cover_interval, MortonKey, MAX_DEPTH, RANK_SPAN};
use pfmm::mpisim;
use pfmm::tree::PointRec;

#[test]
#[should_panic(expected = "level")]
fn morton_rejects_depth_overflow() {
    MortonKey::from_point(&[0.5, 0.5, 0.5], MAX_DEPTH + 1);
}

#[test]
#[should_panic(expected = "unaligned")]
fn morton_rejects_unaligned_anchor() {
    // Anchor 1 is not a multiple of the level-0 cell size.
    MortonKey::new([1, 0, 0], 0);
}

#[test]
#[should_panic(expected = "outside")]
fn morton_rejects_out_of_grid_anchor() {
    MortonKey::new([u32::MAX, 0, 0], MAX_DEPTH);
}

#[test]
#[should_panic(expected = "root has no child index")]
fn morton_root_has_no_child_index() {
    MortonKey::root().child_index();
}

#[test]
#[should_panic(expected = "empty interval")]
fn cover_interval_rejects_empty() {
    cover_interval(5, 4);
}

#[test]
#[should_panic(expected = "outside the unit cube")]
fn cover_interval_rejects_overflow() {
    cover_interval(0, RANK_SPAN);
}

#[test]
#[should_panic(expected = "shape mismatch")]
fn matrix_rejects_bad_shape() {
    Matrix::from_vec(2, 3, vec![1.0; 5]);
}

#[test]
#[should_panic(expected = "matvec: x length")]
fn matvec_rejects_bad_vector() {
    let m = Matrix::zeros(2, 3);
    m.matvec(&[1.0, 2.0]);
}

#[test]
#[should_panic(expected = "inner dimensions")]
fn matmul_rejects_bad_inner() {
    Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
}

#[test]
#[should_panic(expected = "need at least one rank")]
fn mpisim_rejects_zero_ranks() {
    mpisim::run(0, |_| ());
}

#[test]
#[should_panic(expected = "rank thread panicked")]
fn mpisim_send_out_of_range_panics() {
    mpisim::run(1, |c| c.send(5, 0, &[1u8]));
}

#[test]
#[should_panic(expected = "rank thread panicked")]
fn mpisim_type_mismatch_panics() {
    // Sending u32 and receiving f64 must be a loud failure (a real MPI
    // would silently reinterpret bytes).
    mpisim::run(2, |c| {
        if c.rank() == 0 {
            c.send(1, 0, &[7u32]);
        } else {
            let _ = c.recv::<f64>(0, 0);
        }
    });
}

#[test]
#[should_panic(expected = "surface order must be at least 2")]
fn fmm_rejects_order_one() {
    Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 1,
            ..Default::default()
        },
    );
}

#[test]
#[should_panic(expected = "rank thread panicked")]
fn fmm_rejects_zero_q() {
    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 0,
            ..Default::default()
        },
    );
    mpisim::run(1, |c| {
        fmm.evaluate(c, vec![PointRec::scalar([0.5, 0.5, 0.5], 1.0, 0)]);
    });
}

#[test]
#[should_panic(expected = "rank thread panicked")]
fn plan_apply_rejects_misaligned_densities() {
    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 8,
            ..Default::default()
        },
    );
    let pts: Vec<PointRec> = (0..20)
        .map(|i| PointRec::scalar([i as f64 / 20.0, 0.5, 0.5], 1.0, i))
        .collect();
    mpisim::run(1, |c| {
        let mut plan = fmm.plan(c, pts.clone());
        let _ = fmm.apply(c, &mut plan, &[1.0; 3]); // wrong length
    });
}

#[test]
fn evaluate_with_no_points_is_empty_not_crash() {
    // Degenerate but legal: a rank (here, all ranks) with nothing to do.
    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 8,
            ..Default::default()
        },
    );
    let out = mpisim::run(2, |c| {
        let res = fmm.evaluate(c, Vec::new());
        (res.gids.len(), res.pot.len())
    });
    for (g, p) in out {
        assert_eq!((g, p), (0, 0));
    }
}

#[test]
fn points_on_cube_boundary_are_clamped_not_lost() {
    // Coordinates at exactly 1.0 (and 0.0) must land in edge cells.
    let pts = vec![
        PointRec::scalar([0.0, 0.0, 0.0], 1.0, 0),
        PointRec::scalar([1.0, 1.0, 1.0], 1.0, 1),
        PointRec::scalar([1.0, 0.0, 0.5], 1.0, 2),
    ];
    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 2,
            ..Default::default()
        },
    );
    let out = mpisim::run(1, |c| fmm.evaluate(c, pts.clone()).gids.len());
    assert_eq!(out[0], 3);
}

#[test]
fn duplicate_positions_with_distinct_gids_survive() {
    // Coincident points stress the MAX_DEPTH refinement cap and the
    // self-interaction exclusion (which is positional, so coincident
    // distinct points DO interact — only the true self term is dropped).
    let pts: Vec<PointRec> = (0..12)
        .map(|i| PointRec::scalar([0.25, 0.5, 0.75], 1.0, i))
        .collect();
    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 4,
            ..Default::default()
        },
    );
    let out = mpisim::run(1, |c| {
        let res = fmm.evaluate(c, pts.clone());
        pfmm::fmm::driver::gather_potentials(c, &res, 1)
    })
    .pop()
    .expect("one rank");
    assert_eq!(out.len(), 12);
    for (_, v) in out {
        // Coincident pairs have r = 0 and are excluded pairwise, exactly
        // like the direct sum's convention: potential is 0.
        assert_eq!(v[0], 0.0);
    }
}
