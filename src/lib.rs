//! # pfmm — a massively parallel adaptive kernel-independent FMM
//!
//! Rust reproduction of Lashuk et al., *"A massively parallel adaptive
//! fast-multipole method on heterogeneous architectures"* (SC 2009).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! - [`morton`] — Morton octant keys and linear-octree algorithms
//! - [`linalg`] — dense matrices, SVD, pseudo-inverse
//! - [`fft`] — FFTs for the diagonalized V-list translation
//! - [`kernels`] — Laplace / Stokes kernels and the direct baseline
//! - [`mpisim`] — the in-process message-passing runtime (MPI stand-in)
//! - [`tree`] — distributed adaptive octree, LET, interaction lists
//! - [`fmm`] — the FMM itself, sequential and distributed
//! - [`gpusim`] — the CUDA-like streaming executor and GPU FMM kernels
//! - [`perfmodel`] — analytic scaling model for paper-scale extrapolation
//! - [`trace`] — span tracing, comm attribution, Chrome/Perfetto export
//!
//! See `examples/quickstart.rs` for a five-minute tour.
//!
//! ```
//! use std::sync::Arc;
//! use pfmm::fmm::{driver::gather_potentials, Fmm, FmmConfig};
//! use pfmm::fmm::verify::sampled_rel_error;
//! use pfmm::kernels::Laplace;
//! use pfmm::mpisim;
//! use pfmm::tree::PointRec;
//!
//! // A small charge cloud, evaluated on two simulated ranks.
//! let pts: Vec<PointRec> = (0..300)
//!     .map(|i| {
//!         let t = i as f64 / 300.0;
//!         PointRec::scalar([t, (3.3 * t) % 1.0, (7.7 * t) % 1.0], 1.0 - t, i as u64)
//!     })
//!     .collect();
//! let fmm = Fmm::new(Arc::new(Laplace), FmmConfig { order: 4, q: 20, ..Default::default() });
//! let results = mpisim::run(2, |comm| {
//!     let mine: Vec<_> = pts.iter().skip(comm.rank()).step_by(2).copied().collect();
//!     let res = fmm.evaluate(comm, mine);
//!     gather_potentials(comm, &res, 1)
//! });
//! let err = sampled_rel_error(&Laplace, &pts, &results[0], 11);
//! assert!(err < 1e-3, "{err}");
//! ```

pub use pfmm_fft as fft;
pub use pfmm_gpusim as gpusim;
pub use pfmm_kernels as kernels;
pub use pfmm_linalg as linalg;
pub use pfmm_morton as morton;
pub use pfmm_mpisim as mpisim;
pub use pfmm_perfmodel as perfmodel;
pub use pfmm_trace as trace;
pub use pfmm_tree as tree;

/// The FMM core (re-export of `pfmm-core`).
pub use pfmm_core as fmm;

pub mod prelude {
    //! Convenience imports for applications.
    pub use crate::kernels::{Kernel, Laplace, Stokes};
    pub use crate::morton::{MortonKey, Point3, MAX_DEPTH};
}
