//! `pfmm` binary — the command-line driver, so `cargo run --release --
//! <subcommand>` works from the workspace root. See `pfmm-cli` for the
//! dispatcher itself.

use std::process::ExitCode;

fn main() -> ExitCode {
    pfmm_cli::cli_main()
}
