//! GPU acceleration (paper §IV): run the FMM's S2U, U-list, V-list
//! Hadamard and D2T phases through the CUDA-like streaming simulator and
//! compare the modeled Tesla-S1070 time against the modeled 2009
//! CPU-only time — the experiment behind the paper's Figure 6 speedup
//! claim, at laptop scale.
//!
//! Run with: `cargo run --release --example gpu_accel`

use pfmm::fmm::distrib::{randomize_densities, uniform_cube};
use pfmm::gpusim::{run_gpu_fmm, DeviceSpec, GpuPhase};

fn main() {
    let n = 30_000;
    let mut points = uniform_cube(n, 21, 0);
    randomize_densities(&mut points, 1, 22);

    let device = DeviceSpec::tesla_s1070();
    println!("device: {}", device.name);
    // q tuned GPU-style: deeper boxes favor the compute-bound U-list
    // (paper: "we use a shallower tree by allowing a higher number of
    // points per box").
    let report = run_gpu_fmm(points, 400, 4, &device, true);

    println!(
        "\n{:<14} {:>12} {:>12}",
        "phase", "GPU/CPU (s)", "CPU-only (s)"
    );
    for (i, ph) in GpuPhase::ALL.iter().enumerate() {
        println!(
            "{:<14} {:>12.4} {:>12.4}",
            ph.label(),
            report.gpu_secs[i],
            report.cpu2009_secs[i]
        );
    }
    println!(
        "{:<14} {:>12.4} {:>12}",
        "PCIe transfer", report.transfer_secs, "-"
    );
    println!(
        "{:<14} {:>12.4} {:>12.4}",
        "total",
        report.total_gpu(),
        report.total_cpu2009()
    );
    println!(
        "\nhost-side layout translation: {:.4}s (measured; the paper shows this cost is minor)",
        report.translate_secs
    );
    println!(
        "modeled speedup: {:.1}x (paper: 25-30x at its CPU-rate assumptions)",
        report.speedup()
    );
    println!(
        "single-precision pipeline error vs f64 CPU FMM: {:.2e}",
        report.rel_err_vs_f64
    );
    assert!(
        report.rel_err_vs_f64 < 1e-3,
        "f32 GPU pipeline accuracy regression"
    );
    println!("ok");
}
