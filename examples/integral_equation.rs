//! Solve a second-kind integral equation with the FMM as the fast
//! matrix–vector product — the way FMMs power boundary-integral solvers
//! (the paper's Stokes-flow application is exactly this pattern).
//!
//! We solve `(I + c·K) σ = b` on a random particle cloud distributed
//! over four simulated ranks, where `K` is the Laplace single-layer sum.
//! The FMM setup (tree, LET, lists) is built **once** via [`Fmm::plan`];
//! each GMRES iteration re-applies it with a new density through the
//! plan's ghost-refresh exchange, and the Krylov inner products are
//! global (all-reduced), so every rank walks the same iteration.
//!
//! Run with: `cargo run --release --example integral_equation`

use std::sync::Arc;

use pfmm::fmm::distrib::uniform_cube;
use pfmm::fmm::solve::solve_second_kind;
use pfmm::fmm::{Fmm, FmmConfig};
use pfmm::kernels::Laplace;
use pfmm::mpisim;

fn main() {
    let n = 8_000;
    let p = 4;
    // K's row sums grow like N·avg(1/4πr); scale so ‖c·K‖ ≈ 0.2 and the
    // second-kind system is a mild perturbation of the identity.
    let c_scale = 1.0 / n as f64;
    let points = uniform_cube(n, 31, 0);

    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 60,
            ..Default::default()
        },
    );

    let outs = mpisim::run(p, |comm| {
        let mine: Vec<_> = points
            .iter()
            .skip(comm.rank())
            .step_by(p)
            .copied()
            .collect();
        let mut plan = fmm.plan(comm, mine);

        // Right-hand side: a smooth field, in the plan's owned order.
        let b: Vec<f64> = plan
            .owned_gids()
            .iter()
            .map(|g| 1.0 + (*g as f64 * 0.01).sin())
            .collect();

        let (sigma, report) = solve_second_kind(&fmm, comm, &mut plan, &b, c_scale, 1e-10, 60)
            .expect("second-kind system converges");

        // Verify independently: recompute the residual from scratch.
        let (k_sigma, _) = fmm.apply(comm, &mut plan, &sigma);
        let local_num: f64 = sigma
            .iter()
            .zip(&k_sigma)
            .zip(&b)
            .map(|((s, k), bb)| (s + c_scale * k - bb).powi(2))
            .sum();
        let local_den: f64 = b.iter().map(|x| x * x).sum();
        let num = mpisim::collectives::allreduce_one(comm, local_num, |a, b| a + b);
        let den = mpisim::collectives::allreduce_one(comm, local_den, |a, b| a + b);
        (
            report.matvecs,
            report.final_residual(),
            (num / den).sqrt(),
            plan.num_owned(),
        )
    });

    let (matvecs, reported, verified, _) = outs[0];
    let owned: Vec<usize> = outs.iter().map(|(_, _, _, n)| *n).collect();
    println!("{p} ranks, points per rank after balancing: {owned:?}");
    println!("GMRES: {matvecs} FMM applications, one tree/LET build per rank");
    println!("reported residual {reported:.2e}; independently verified {verified:.2e}");
    for (m, r, v, _) in &outs {
        assert_eq!(*m, matvecs, "all ranks walked the same iteration");
        assert!((r - reported).abs() < 1e-15);
        assert!(*v < 1e-8, "solver verification failed: {v}");
    }
    println!("ok: second-kind integral equation solved distributed with one FMM plan");
}
