//! Quickstart: evaluate an electrostatic N-body potential with the FMM
//! and check it against the exact direct sum.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use pfmm::fmm::driver::gather_potentials;
use pfmm::fmm::{Fmm, FmmConfig};
use pfmm::kernels::{direct_eval, Kernel, Laplace};
use pfmm::mpisim;
use pfmm::tree::PointRec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    // 20,000 random charges in the unit cube.
    let n = 20_000;
    let mut rng = StdRng::seed_from_u64(1);
    let points: Vec<PointRec> = (0..n)
        .map(|i| {
            PointRec::scalar(
                [rng.random(), rng.random(), rng.random()],
                rng.random::<f64>() * 2.0 - 1.0,
                i as u64,
            )
        })
        .collect();

    // An FMM evaluator for the Laplace kernel. Order 6 gives ~5 digits;
    // see FmmConfig for the other knobs (q, M2L mode, load balancing).
    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 6,
            q: 100,
            ..Default::default()
        },
    );

    // Evaluate on a single rank (pass p > 1 for distributed execution —
    // the API is identical).
    let result = mpisim::run(1, |comm| {
        let res = fmm.evaluate(comm, points.clone());
        println!(
            "tree: {} leaves, levels {}..{}; evaluation {:.3}s (setup {:.3}s)",
            res.info.global_leaves,
            res.info.min_leaf_level,
            res.info.max_leaf_level,
            res.profile.total_secs,
            res.profile.setup_secs,
        );
        gather_potentials(comm, &res, 1)
    })
    .pop()
    .expect("one rank");

    // Verify a random subsample against the O(N²) direct sum.
    let pos: Vec<[f64; 3]> = points.iter().map(|p| p.pos).collect();
    let den: Vec<f64> = points.iter().map(|p| p.den[0]).collect();
    let by_gid: std::collections::HashMap<u64, f64> =
        result.into_iter().map(|(g, v)| (g, v[0])).collect();

    let mut num = 0.0f64;
    let mut dnm = 0.0f64;
    for i in (0..n).step_by(97) {
        let mut exact = [0.0f64];
        direct_eval(&Laplace, &[pos[i]], &pos, &den, &mut exact);
        let fmm_v = by_gid[&(i as u64)];
        num += (fmm_v - exact[0]).powi(2);
        dnm += exact[0].powi(2);
    }
    let rel = (num / dnm).sqrt();
    println!("relative l2 error vs direct sum (subsample): {rel:.2e}");
    assert!(rel < 1e-4, "FMM accuracy regression");
    println!(
        "ok: {} potentials computed with kernel '{}'",
        n,
        Laplace.name()
    );
}
