//! Distributed execution: the same N-body sum on 1, 2, 4 and 8 simulated
//! MPI ranks, demonstrating that the distributed pipeline (sample sort,
//! Points2Octree, LET exchange, work-weighted repartition, hypercube
//! reduce-and-scatter) produces the same potentials while spreading the
//! flops across ranks.
//!
//! Run with: `cargo run --release --example distributed_scaling`

use std::sync::Arc;

use pfmm::fmm::distrib::{randomize_densities, uniform_cube};
use pfmm::fmm::driver::gather_potentials;
use pfmm::fmm::{Fmm, FmmConfig};
use pfmm::kernels::Laplace;
use pfmm::mpisim;

fn main() {
    let n = 16_000;
    let mut points = uniform_cube(n, 11, 0);
    randomize_densities(&mut points, 1, 12);
    let fmm = Fmm::new(
        Arc::new(Laplace),
        FmmConfig {
            order: 4,
            q: 60,
            ..Default::default()
        },
    );

    let mut reference: Option<std::collections::HashMap<u64, f64>> = None;
    for p in [1usize, 2, 4, 8] {
        // Each rank contributes an arbitrary slice of the points; the
        // algorithm owns the final distribution (paper §III).
        let out = mpisim::run(p, |comm| {
            let mine: Vec<_> = points
                .iter()
                .skip(comm.rank())
                .step_by(p)
                .copied()
                .collect();
            let res = fmm.evaluate(comm, mine);
            let flops = res.profile.total_flops();
            let comm_bytes = res.comm_reduce.sent_bytes;
            (gather_potentials(comm, &res, 1), flops, comm_bytes)
        });

        let flops: Vec<u64> = out.iter().map(|(_, f, _)| *f).collect();
        let bytes: Vec<u64> = out.iter().map(|(_, _, b)| *b).collect();
        let gathered = &out[0].0;
        assert_eq!(gathered.len(), n, "every point evaluated exactly once");

        match &reference {
            None => {
                reference = Some(gathered.iter().map(|(g, v)| (*g, v[0])).collect());
                println!("p=1: reference computed ({} points)", n);
            }
            Some(want) => {
                let mut worst = 0.0f64;
                for (gid, v) in gathered {
                    let w = want[gid];
                    worst = worst.max((v[0] - w).abs() / w.abs().max(1.0));
                }
                println!(
                    "p={p}: max relative deviation from p=1: {worst:.2e} \
                     (truncation-level: the distributed tree splits differently \
                     at region boundaries)"
                );
                assert!(worst < 1e-2, "deviation beyond truncation scale");
            }
        }
        println!(
            "     per-rank Gflops: {:?}   reduce-scatter kB sent: {:?}",
            flops
                .iter()
                .map(|f| (*f as f64 / 1e9 * 10.0).round() / 10.0)
                .collect::<Vec<_>>(),
            bytes.iter().map(|b| b / 1000).collect::<Vec<_>>(),
        );
    }
    println!("ok: distributed == sequential at truncation accuracy on all rank counts");
}
