//! The paper's motivating application: Stokes flow due to forces on a
//! highly nonuniform particle distribution (a 1:1:4 ellipsoid surface),
//! evaluated with the vector-valued Stokeslet kernel — three unknowns per
//! point, like the Kraken runs.
//!
//! Run with: `cargo run --release --example ellipsoid_stokes`

use std::sync::Arc;

use pfmm::fmm::distrib::{ellipsoid_1_1_4, randomize_densities};
use pfmm::fmm::driver::gather_potentials;
use pfmm::fmm::{Fmm, FmmConfig, Phase};
use pfmm::kernels::{direct_eval, Kernel, Stokes};
use pfmm::mpisim;

fn main() {
    let n = 15_000;
    let mut points = ellipsoid_1_1_4(n, 7, 0);
    randomize_densities(&mut points, 3, 8);

    let kernel = Stokes { mu: 1.0 };
    let fmm = Fmm::new(
        Arc::new(kernel),
        FmmConfig {
            order: 6,
            q: 80,
            ..Default::default()
        },
    );

    let (gathered, prof, info) = mpisim::run(1, |comm| {
        let res = fmm.evaluate(comm, points.clone());
        (
            gather_potentials(comm, &res, 3),
            res.profile.clone(),
            res.info,
        )
    })
    .pop()
    .expect("one rank");

    println!(
        "nonuniform tree: {} leaves spanning levels {}..{} ({} level difference)",
        info.global_leaves,
        info.min_leaf_level,
        info.max_leaf_level,
        info.max_leaf_level - info.min_leaf_level,
    );
    println!("per-phase flops:");
    for ph in Phase::ALL {
        println!("  {:<10} {:>12.3e}", ph.label(), prof.flops(ph) as f64);
    }

    // Verify the velocity field on a subsample against the direct sum.
    let pos: Vec<[f64; 3]> = points.iter().map(|p| p.pos).collect();
    let mut den = Vec::with_capacity(3 * n);
    for p in &points {
        den.extend_from_slice(&p.den);
    }
    let by_gid: std::collections::HashMap<u64, Vec<f64>> = gathered.into_iter().collect();
    let mut num = 0.0f64;
    let mut dnm = 0.0f64;
    for i in (0..n).step_by(131) {
        let mut exact = [0.0f64; 3];
        direct_eval(&kernel, &[pos[i]], &pos, &den, &mut exact);
        let got = &by_gid[&(i as u64)];
        for c in 0..3 {
            num += (got[c] - exact[c]).powi(2);
            dnm += exact[c].powi(2);
        }
    }
    let rel = (num / dnm).sqrt();
    println!("relative l2 error of the Stokes velocities (subsample): {rel:.2e}");
    assert!(rel < 1e-3, "Stokes FMM accuracy regression");
    println!("ok: kernel '{}', {} unknowns", kernel.name(), 3 * n);
}
